// Elastic intra-peer sharding (dist/shard.h): routing determinism, K>1
// answer equivalence with the unsharded cluster on both engines, K=1
// byte-identity, opt-in wire batching, and live shard migration — including
// a soak where crashes fire around a migration mid-evaluation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "dist/dnaive.h"
#include "dist/dqsq.h"
#include "dist/network.h"
#include "dist/shard.h"
#include "tests/test_util.h"

namespace dqsq::dist {
namespace {

using ::dqsq::testing::AnswerStrings;

const char* kFigure3 = R"(
  r@r(X, Y) :- a@r(X, Y).
  r@r(X, Y) :- s@s(X, Z), t@t(Z, Y).
  s@s(X, Y) :- r@r(X, Y), b@s(Y, Z).
  t@t(X, Y) :- c@t(X, Y).
  a@r("1", "2").
  a@r("2", "3").
  a@r("7", "8").
  b@s("2", "5").
  b@s("3", "6").
  c@t("2", "4").
  c@t("3", "9").
)";

struct Parsed {
  Program program;
  ParsedQuery query;
};

Parsed ParseAll(DatalogContext& ctx, const std::string& program_text,
                const std::string& query_text) {
  auto program = ParseProgram(program_text, ctx);
  DQSQ_CHECK_OK(program.status());
  auto query = ParseQuery(query_text, ctx);
  DQSQ_CHECK_OK(query.status());
  return Parsed{*std::move(program), *std::move(query)};
}

struct RunOutcome {
  std::vector<std::string> answers;
  NetworkStats stats;
  size_t num_peers = 0;
  bool quiescent = false;
};

StatusOr<RunOutcome> Solve(bool qsq, const std::string& program_text,
                           const std::string& query_text,
                           const DistOptions& opts) {
  DatalogContext ctx;
  Parsed p = ParseAll(ctx, program_text, query_text);
  DQSQ_ASSIGN_OR_RETURN(DistResult result,
                        qsq ? DistQsqSolve(ctx, p.program, p.query, opts)
                            : DistNaiveSolve(ctx, p.program, p.query, opts));
  RunOutcome out;
  out.answers = AnswerStrings(result.answers, ctx);
  out.stats = result.net_stats;
  out.num_peers = result.num_peers;
  out.quiescent = result.quiescent_at_detection;
  return out;
}

// ---------------------------------------------------------------------------
// ShardRouter topology and routing.
// ---------------------------------------------------------------------------

TEST(ShardRouterTest, TopologyNamesAndKOneCollapse) {
  DatalogContext ctx;
  SymbolId a = ctx.InternPeer("alpha");
  SymbolId b = ctx.InternPeer("beta");
  std::set<SymbolId> logical{a, b};

  ShardRouter one(ctx, logical, 1);
  EXPECT_EQ(one.num_shards(), 1u);
  EXPECT_EQ(one.GroupOf(a), (std::vector<SymbolId>{a}));
  EXPECT_EQ(one.LogicalOf(a), a);
  Tuple t{1, 2, 3};
  EXPECT_EQ(one.ShardOfTuple(t), 0u);

  ShardRouter four(ctx, logical, 4);
  EXPECT_EQ(four.num_shards(), 4u);
  const std::vector<SymbolId>& group = four.GroupOf(a);
  ASSERT_EQ(group.size(), 4u);
  // Shard 0 IS the logical id; shards i >= 1 are named "<peer>#i".
  EXPECT_EQ(group[0], a);
  EXPECT_EQ(ctx.symbols().Name(group[1]), "alpha#1");
  EXPECT_EQ(ctx.symbols().Name(group[3]), "alpha#3");
  for (SymbolId shard : group) {
    EXPECT_EQ(four.LogicalOf(shard), a);
    EXPECT_TRUE(four.Knows(shard));
  }
  // Unknown ids pass through LogicalOf untouched (the DS root, say).
  SymbolId other = ctx.InternPeer("unrelated");
  EXPECT_EQ(four.LogicalOf(other), other);
  EXPECT_FALSE(four.Knows(other));
  EXPECT_EQ(four.AllShards().size(), 8u);
}

TermId Const(DatalogContext& ctx, const std::string& name) {
  return ctx.arena().MakeConstant(ctx.symbols().Intern(name));
}

TEST(ShardRouterTest, RoutingIsDeterministicAndSpreads) {
  DatalogContext ctx;
  std::set<SymbolId> logical{ctx.InternPeer("p")};
  ShardRouter router(ctx, logical, 8);
  std::vector<size_t> hits(8, 0);
  for (int x = 0; x < 512; ++x) {
    Tuple t{Const(ctx, "v" + std::to_string(x)),
            Const(ctx, "v" + std::to_string(x + 1))};
    size_t shard = router.ShardOfTuple(t);
    ASSERT_LT(shard, 8u);
    EXPECT_EQ(router.ShardOfTuple(t), shard);  // stable
    ++hits[shard];
  }
  // FNV-seeded content hashing must not collapse onto few shards.
  for (size_t shard = 0; shard < 8; ++shard) {
    EXPECT_GT(hits[shard], 0u) << "shard " << shard << " got no tuples";
  }
}

TEST(ShardRouterTest, PartitionRowsAgreesWithShardOfTuple) {
  DatalogContext ctx;
  std::set<SymbolId> logical{ctx.InternPeer("p")};
  ShardRouter router(ctx, logical, 4);
  Relation rel(/*arity=*/2);
  for (int x = 0; x < 64; ++x) {
    rel.Insert(Tuple{Const(ctx, "v" + std::to_string(x)),
                     Const(ctx, "v" + std::to_string(2 * x))});
  }
  std::vector<std::vector<uint32_t>> parts;
  EXPECT_EQ(router.PartitionRows(rel, parts), 64u);
  ASSERT_EQ(parts.size(), 4u);
  size_t total = 0;
  for (size_t shard = 0; shard < parts.size(); ++shard) {
    for (uint32_t row : parts[shard]) {
      auto r = rel.Row(row);
      EXPECT_EQ(router.ShardOfTuple(r), shard);
    }
    total += parts[shard].size();
  }
  EXPECT_EQ(total, 64u);
}

// The real-wire cluster runs one ShardRouter per OS process, each with
// its own DatalogContext whose interning order depends on what that
// process parsed first. Ownership must nonetheless agree everywhere:
// routing hashes term CONTENT, never arena ids.
TEST(ShardRouterTest, RoutingAgreesAcrossInterningOrders) {
  DatalogContext a;
  DatalogContext b;
  // Interleave unrelated interning in `b` so its ids diverge from `a`'s.
  for (int x = 0; x < 100; ++x) Const(b, "noise" + std::to_string(x));
  std::set<SymbolId> logical_a{a.InternPeer("p")};
  std::set<SymbolId> logical_b{b.InternPeer("p")};
  ShardRouter router_a(a, logical_a, 4);
  ShardRouter router_b(b, logical_b, 4);
  for (int x = 0; x < 256; ++x) {
    const std::string lhs = "v" + std::to_string(x);
    const std::string rhs = "v" + std::to_string(511 - x);
    Tuple ta{Const(a, lhs), Const(a, rhs)};
    // Reverse intern order in `b` on top of the noise offset.
    TermId b_rhs = Const(b, rhs);
    Tuple tb{Const(b, lhs), b_rhs};
    EXPECT_EQ(router_a.ShardOfTuple(ta), router_b.ShardOfTuple(tb))
        << "(" << lhs << ", " << rhs << ") routed differently";
  }
}

// ---------------------------------------------------------------------------
// Sharded evaluation equivalence.
// ---------------------------------------------------------------------------

TEST(ShardEvalTest, ShardedAnswersMatchUnshardedBothEngines) {
  const std::string chain = bench::DistributedChainProgram(3, 12);
  struct Workload {
    const char* name;
    std::string program;
    std::string query;
  };
  std::vector<Workload> workloads = {
      {"figure3", kFigure3, "r@r(\"1\", Y)"},
      {"chain3x12", chain, "path@peer0(v0, Y)"},
  };
  for (const Workload& w : workloads) {
    for (bool qsq : {false, true}) {
      auto base = Solve(qsq, w.program, w.query, DistOptions{});
      ASSERT_TRUE(base.ok()) << base.status().ToString();
      for (size_t shards : {2u, 4u}) {
        for (uint64_t seed : {1u, 2u, 3u}) {
          DistOptions opts;
          opts.seed = seed;
          opts.num_shards = shards;
          auto sharded = Solve(qsq, w.program, w.query, opts);
          ASSERT_TRUE(sharded.ok())
              << w.name << " " << (qsq ? "dqsq" : "dnaive") << " K=" << shards
              << " seed=" << seed << ": " << sharded.status().ToString();
          EXPECT_EQ(sharded->answers, base->answers)
              << w.name << " " << (qsq ? "dqsq" : "dnaive") << " K=" << shards
              << " seed=" << seed;
          EXPECT_TRUE(sharded->quiescent);
          EXPECT_EQ(sharded->num_peers, base->num_peers * shards);
        }
      }
    }
  }
}

TEST(ShardEvalTest, ShardedReliableShimTerminatesAtScale) {
  // Regression for the standalone-ack livelock: a sharded cluster has
  // ~K² times the directed channels of the unsharded one, and the
  // transport used to re-emit every owed standalone ack each ack_delay
  // steps with no backoff. Past ~ack_delay owed channels that constant
  // production outran the wire's one-delivery-per-step drain rate, the
  // discharging acks queued behind the flood they created, logical traffic
  // starved, and Dijkstra-Scholten never terminated. chain 3x8 at K=2 was
  // the smallest reliable repro; the shim is engaged with a vanishing
  // duplicate probability so the wire itself stays effectively lossless —
  // the livelock needed no actual faults.
  const std::string chain = bench::DistributedChainProgram(3, 8);
  for (bool qsq : {false, true}) {
    auto base = Solve(qsq, chain, "path@peer0(v0, Y)", DistOptions{});
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    for (size_t shards : {2u, 4u}) {
      DistOptions opts;
      opts.num_shards = shards;
      opts.faults.duplicate = 1e-12;  // engages the shim, never fires
      opts.max_network_steps = 60'000;
      auto run = Solve(qsq, chain, "path@peer0(v0, Y)", opts);
      ASSERT_TRUE(run.ok()) << (qsq ? "dqsq" : "dnaive") << " K=" << shards
                            << ": " << run.status().ToString();
      EXPECT_EQ(run->answers, base->answers);
      EXPECT_TRUE(run->quiescent);
    }
    // And with real faults: a lossy, reordering wire at K=2 still
    // converges to the lossless answers.
    DistOptions lossy;
    lossy.num_shards = 2;
    lossy.faults.drop = 0.02;
    lossy.faults.delay = 0.05;
    auto run = Solve(qsq, chain, "path@peer0(v0, Y)", lossy);
    ASSERT_TRUE(run.ok()) << (qsq ? "dqsq" : "dnaive") << " lossy: "
                          << run.status().ToString();
    EXPECT_EQ(run->answers, base->answers);
  }
}

TEST(ShardEvalTest, NumShardsOneIsByteIdenticalToDefault) {
  // K=1 must not merely match answers: the wire trajectory itself is the
  // unsharded one (no router is even built), so every counter pins equal.
  for (bool qsq : {false, true}) {
    auto base = Solve(qsq, kFigure3, "r@r(\"1\", Y)", DistOptions{});
    ASSERT_TRUE(base.ok());
    DistOptions opts;
    opts.num_shards = 1;
    auto k1 = Solve(qsq, kFigure3, "r@r(\"1\", Y)", opts);
    ASSERT_TRUE(k1.ok());
    EXPECT_EQ(k1->answers, base->answers);
    EXPECT_EQ(k1->stats.messages_delivered, base->stats.messages_delivered);
    EXPECT_EQ(k1->stats.tuples_shipped, base->stats.tuples_shipped);
    EXPECT_EQ(k1->stats.wire_messages, base->stats.wire_messages);
    EXPECT_EQ(k1->stats.wire_bytes, base->stats.wire_bytes);
  }
}

// ---------------------------------------------------------------------------
// Wire batching (opt-in).
// ---------------------------------------------------------------------------

TEST(WireBatchTest, BatchingPreservesAnswersAndNeverAddsMessages) {
  // Unsharded, a fixpoint flush carries at most one relation per target,
  // so batching is a behavioral no-op here: answers, shipped rows and
  // message counts all pin to the unbatched run. (Sections form under
  // sharding — asserted in ShardedBatchingPacksSections below.)
  const std::string chain = bench::DistributedChainProgram(4, 16);
  for (bool qsq : {false, true}) {
    auto base = Solve(qsq, chain, "path@peer0(v0, Y)", DistOptions{});
    ASSERT_TRUE(base.ok());
    DistOptions opts;
    opts.wire_batch.enable = true;
    opts.wire_batch.max_bytes = 4096;
    auto batched = Solve(qsq, chain, "path@peer0(v0, Y)", opts);
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    EXPECT_EQ(batched->answers, base->answers);
    // Every row still arrives (sections count as shipped rows)...
    EXPECT_EQ(batched->stats.tuples_shipped, base->stats.tuples_shipped);
    // ...in no more envelopes than before.
    EXPECT_LE(batched->stats.messages_delivered,
              base->stats.messages_delivered);
  }
}

TEST(WireBatchTest, ShardedBatchingPacksSections) {
  // Under sharding the exchange and the own$ broadcasts flush several
  // relations to the same sibling per fixpoint — exactly the small-payload
  // shower batching exists for. Rows must ride as sections and the
  // envelope count must drop against the sharded-unbatched run.
  auto& registry = MetricsRegistry::Global();
  for (bool qsq : {false, true}) {
    DistOptions plain;
    plain.num_shards = 2;
    auto unbatched = Solve(qsq, kFigure3, "r@r(\"1\", Y)", plain);
    ASSERT_TRUE(unbatched.ok());
    DistOptions opts;
    opts.num_shards = 2;
    opts.wire_batch.enable = true;
    opts.wire_batch.max_bytes = 4096;
    MetricsSnapshot before = registry.Snapshot();
    auto batched = Solve(qsq, kFigure3, "r@r(\"1\", Y)", opts);
    MetricsSnapshot diff = registry.Snapshot().Diff(before);
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    EXPECT_EQ(batched->answers, unbatched->answers);
    // Coalesced arrivals mean the receiver fixpoints over more data at
    // once, which can only SAVE redundant intermediate shipments.
    EXPECT_LE(batched->stats.tuples_shipped, unbatched->stats.tuples_shipped);
    EXPECT_LT(batched->stats.messages_delivered,
              unbatched->stats.messages_delivered)
        << (qsq ? "dqsq" : "dnaive");
    EXPECT_GT(diff.Total("dist.net.batched_tuples"), 0u)
        << (qsq ? "dqsq" : "dnaive");
  }
}

TEST(WireBatchTest, TinyBudgetSplitsOversizedPayloads) {
  const std::string chain = bench::DistributedChainProgram(3, 16);
  auto& registry = MetricsRegistry::Global();
  auto base = Solve(false, chain, "path@peer0(v0, Y)", DistOptions{});
  ASSERT_TRUE(base.ok());
  DistOptions opts;
  opts.wire_batch.enable = true;
  opts.wire_batch.max_bytes = 24;  // one ~2-ary row past the 16-byte header
  MetricsSnapshot before = registry.Snapshot();
  auto split = Solve(false, chain, "path@peer0(v0, Y)", opts);
  MetricsSnapshot diff = registry.Snapshot().Diff(before);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_EQ(split->answers, base->answers);
  EXPECT_EQ(split->stats.tuples_shipped, base->stats.tuples_shipped);
  EXPECT_GT(diff.Total("dist.net.split_tuples"), 0u);
  EXPECT_GT(split->stats.messages_delivered, base->stats.messages_delivered);
}

TEST(WireBatchTest, ShardedAndBatchedTogetherMatchBaseline) {
  const std::string chain = bench::DistributedChainProgram(3, 12);
  for (bool qsq : {false, true}) {
    auto base = Solve(qsq, chain, "path@peer0(v0, Y)", DistOptions{});
    ASSERT_TRUE(base.ok());
    DistOptions opts;
    opts.num_shards = 2;
    opts.wire_batch.enable = true;
    opts.wire_batch.max_bytes = 256;
    auto combined = Solve(qsq, chain, "path@peer0(v0, Y)", opts);
    ASSERT_TRUE(combined.ok()) << combined.status().ToString();
    EXPECT_EQ(combined->answers, base->answers);
    EXPECT_TRUE(combined->quiescent);
  }
}

// ---------------------------------------------------------------------------
// Live shard migration.
// ---------------------------------------------------------------------------

TEST(MigrationTest, LiveMigrationMidEvaluationPreservesAnswers) {
  for (bool qsq : {false, true}) {
    auto lossless = Solve(qsq, kFigure3, "r@r(\"1\", Y)", DistOptions{});
    ASSERT_TRUE(lossless.ok());
    DistOptions opts;
    opts.faults.crash.migrate_at_step = {{/*at_step=*/20, /*peer_index=*/0}};
    opts.faults.crash.checkpoint_every = 1;
    auto migrated = Solve(qsq, kFigure3, "r@r(\"1\", Y)", opts);
    ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
    EXPECT_EQ(migrated->answers, lossless->answers);
    EXPECT_TRUE(migrated->quiescent);
    EXPECT_EQ(migrated->stats.migrations, 1u);
    EXPECT_EQ(migrated->stats.crashes, 0u);   // a hand-off is not a failure
    EXPECT_EQ(migrated->stats.restarts, 0u);  // nor a crash-restart
    // Logical traffic is migration-invariant: the epoch fence plus WAL
    // replay hand the successor exactly the old owner's obligations.
    EXPECT_EQ(migrated->stats.messages_delivered,
              lossless->stats.messages_delivered);
    EXPECT_EQ(migrated->stats.tuples_shipped,
              lossless->stats.tuples_shipped);
  }
}

TEST(MigrationTest, ShardedMigrationMatchesUnshardedAnswers) {
  // Migrate one worker shard of a K=2 cluster mid-evaluation; the answers
  // must still match the plain unsharded run.
  for (bool qsq : {false, true}) {
    auto base = Solve(qsq, kFigure3, "r@r(\"1\", Y)", DistOptions{});
    ASSERT_TRUE(base.ok());
    for (size_t peer_index : {0u, 1u, 3u}) {
      DistOptions opts;
      opts.num_shards = 2;
      opts.faults.crash.migrate_at_step = {
          {/*at_step=*/25, peer_index}};
      opts.faults.crash.checkpoint_every = 2;
      auto migrated = Solve(qsq, kFigure3, "r@r(\"1\", Y)", opts);
      ASSERT_TRUE(migrated.ok())
          << (qsq ? "dqsq" : "dnaive") << " shard-index " << peer_index
          << ": " << migrated.status().ToString();
      EXPECT_EQ(migrated->answers, base->answers);
      EXPECT_TRUE(migrated->quiescent);
      EXPECT_EQ(migrated->stats.migrations, 1u);
    }
  }
}

TEST(MigrationSoakTest, CrashesAroundMigrationAcrossSeeds) {
  // The satellite soak: schedules where the OLD owner dies before its
  // migration, the NEW owner dies right after taking over, and WAL replay
  // is mid-flight (checkpoint_every > 1) — across 20 seeds, both engines.
  struct Schedule {
    const char* name;
    CrashPlan plan;
  };
  std::vector<Schedule> schedules;
  // Every event sits early in the run (a lossless Figure3 run is longer
  // than 25 clock units on every seed) so the schedules always fire.
  {
    // Old owner killed first; the migration then moves the restarted peer.
    CrashPlan p;
    p.crash_at_step = {{/*at_step=*/8, /*peer_index=*/0}};
    p.migrate_at_step = {{/*at_step=*/20, /*peer_index=*/0}};
    p.down_for = 8;
    p.checkpoint_every = 1;
    schedules.push_back({"old-owner-killed", p});
  }
  {
    // New owner killed right after the hand-off.
    CrashPlan p;
    p.migrate_at_step = {{/*at_step=*/12, /*peer_index=*/0}};
    p.crash_at_step = {{/*at_step=*/16, /*peer_index=*/0}};
    p.down_for = 8;
    p.checkpoint_every = 1;
    schedules.push_back({"new-owner-killed", p});
  }
  {
    // Migration lands while the WAL has unreplayed suffix (sparse
    // checkpoints) and a second peer dies around it.
    CrashPlan p;
    p.migrate_at_step = {{/*at_step=*/14, /*peer_index=*/1}};
    p.crash_at_step = {{/*at_step=*/10, /*peer_index=*/0}};
    p.down_for = 16;
    p.checkpoint_every = 4;
    schedules.push_back({"in-flight-wal", p});
  }
  for (bool qsq : {false, true}) {
    auto lossless = Solve(qsq, kFigure3, "r@r(\"1\", Y)", DistOptions{});
    ASSERT_TRUE(lossless.ok());
    for (const Schedule& schedule : schedules) {
      for (uint64_t seed = 1; seed <= 20; ++seed) {
        DistOptions opts;
        opts.seed = seed;
        opts.faults.crash = schedule.plan;
        auto run = Solve(qsq, kFigure3, "r@r(\"1\", Y)", opts);
        ASSERT_TRUE(run.ok())
            << (qsq ? "dqsq" : "dnaive") << " " << schedule.name << " seed "
            << seed << ": " << run.status().ToString();
        EXPECT_EQ(run->answers, lossless->answers)
            << (qsq ? "dqsq" : "dnaive") << " " << schedule.name << " seed "
            << seed;
        EXPECT_TRUE(run->quiescent);
        EXPECT_EQ(run->stats.migrations, 1u);
        // DS quiescence plus logical invariance survive the combination.
        EXPECT_EQ(run->stats.messages_delivered,
                  lossless->stats.messages_delivered);
        EXPECT_EQ(run->stats.tuples_shipped, lossless->stats.tuples_shipped);
      }
    }
  }
}

}  // namespace
}  // namespace dqsq::dist
