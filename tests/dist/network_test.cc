#include "dist/network.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

namespace dqsq::dist {
namespace {

// Records deliveries; optionally forwards once to a next hop.
class EchoPeer : public PeerNode {
 public:
  EchoPeer(SymbolId id, SymbolId next, int forwards)
      : id_(id), next_(next), forwards_(forwards) {}

  Status OnMessage(const Message& message, Network& network) override {
    received.push_back(message);
    if (forwards_ > 0) {
      --forwards_;
      Message m = message;
      m.from = id_;
      m.to = next_;
      network.Send(std::move(m));
    }
    return Status::Ok();
  }

  std::vector<Message> received;

 private:
  SymbolId id_;
  SymbolId next_;
  int forwards_;
};

TEST(SimNetworkTest, FifoPerChannel) {
  SimNetwork net(1);
  EchoPeer a(1, 2, 0), b(2, 1, 0);
  net.Register(1, &a);
  net.Register(2, &b);
  for (uint32_t i = 0; i < 10; ++i) {
    Message m;
    m.kind = MessageKind::kTuples;
    m.from = 1;
    m.to = 2;
    m.rel = RelId{i, 0};
    net.Send(std::move(m));
  }
  ASSERT_TRUE(net.RunToQuiescence().ok());
  ASSERT_EQ(b.received.size(), 10u);
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(b.received[i].rel.pred, i);  // channel order preserved
  }
}

TEST(SimNetworkTest, CrossChannelOrderIsSeedDependentButDeterministic) {
  auto run = [](uint64_t seed) {
    SimNetwork net(seed);
    EchoPeer sink(3, 3, 0);
    EchoPeer src1(1, 3, 0), src2(2, 3, 0);
    net.Register(1, &src1);
    net.Register(2, &src2);
    net.Register(3, &sink);
    for (uint32_t i = 0; i < 6; ++i) {
      Message m;
      m.kind = MessageKind::kTuples;
      m.from = (i % 2) ? 1 : 2;
      m.to = 3;
      m.rel = RelId{i, 0};
      net.Send(std::move(m));
    }
    DQSQ_CHECK_OK(net.RunToQuiescence());
    std::vector<uint32_t> order;
    for (const Message& m : sink.received) order.push_back(m.rel.pred);
    return order;
  };
  EXPECT_EQ(run(7), run(7));  // deterministic for a seed
  // Some seed pair interleaves differently (cross-channel asynchrony).
  bool differs = false;
  auto base = run(1);
  for (uint64_t seed = 2; seed < 10 && !differs; ++seed) {
    differs = (run(seed) != base);
  }
  EXPECT_TRUE(differs);
}

TEST(SimNetworkTest, QuiescenceAndStats) {
  SimNetwork net(1);
  EchoPeer a(1, 2, 3), b(2, 1, 3);  // ping-pong, 3 forwards each
  net.Register(1, &a);
  net.Register(2, &b);
  EXPECT_TRUE(net.Quiescent());
  Message m;
  m.kind = MessageKind::kTuples;
  m.from = 1;
  m.to = 2;
  m.tuples = {{1, 2}, {3, 4}};
  net.Send(std::move(m));
  EXPECT_FALSE(net.Quiescent());
  ASSERT_TRUE(net.RunToQuiescence().ok());
  EXPECT_TRUE(net.Quiescent());
  // 1 initial + 6 forwards = 7 deliveries; each carries 2 tuples.
  EXPECT_EQ(net.stats().messages_delivered, 7u);
  EXPECT_EQ(net.stats().tuples_shipped, 14u);
  // On a perfect wire without the shim, wire == logical.
  EXPECT_EQ(net.stats().wire_messages, 7u);
}

TEST(SimNetworkTest, RunToQuiescenceSucceedsWithExactBudget) {
  // Regression: the budget used to be reported as exhausted even when the
  // max_steps-th delivery was the one that reached quiescence.
  SimNetwork net(1);
  EchoPeer a(1, 2, 0), b(2, 1, 0);
  net.Register(1, &a);
  net.Register(2, &b);
  const size_t kMessages = 10;
  for (uint32_t i = 0; i < kMessages; ++i) {
    Message m;
    m.kind = MessageKind::kTuples;
    m.from = 1;
    m.to = 2;
    m.rel = RelId{i, 0};
    net.Send(std::move(m));
  }
  EXPECT_TRUE(net.RunToQuiescence(/*max_steps=*/kMessages).ok());
  EXPECT_TRUE(net.Quiescent());
  EXPECT_EQ(b.received.size(), kMessages);
}

TEST(SimNetworkDeathTest, SendFromUnregisteredPeerDies) {
  // An unregistered sender would corrupt Dijkstra-Scholten ack routing:
  // the receiver acks message.from, and that ack must be deliverable.
  SimNetwork net(1);
  EchoPeer b(2, 2, 0);
  net.Register(2, &b);
  Message m;
  m.kind = MessageKind::kTuples;
  m.from = 1;  // never registered
  m.to = 2;
  EXPECT_DEATH(net.Send(std::move(m)), "unregistered");
}

TEST(SimNetworkTest, ManyChannelsDeliverEverything) {
  // Exercises the incremental non-empty index across channel churn: a
  // dense peer set where every pair exchanges messages in both directions.
  SimNetwork net(5);
  const uint32_t kPeers = 12;
  std::vector<std::unique_ptr<EchoPeer>> peers;
  for (uint32_t p = 0; p < kPeers; ++p) {
    peers.push_back(std::make_unique<EchoPeer>(p, p, 0));
    net.Register(p, peers.back().get());
  }
  size_t sent = 0;
  for (uint32_t from = 0; from < kPeers; ++from) {
    for (uint32_t to = 0; to < kPeers; ++to) {
      if (from == to) continue;
      for (uint32_t i = 0; i < 3; ++i) {
        Message m;
        m.kind = MessageKind::kTuples;
        m.from = from;
        m.to = to;
        m.rel = RelId{i, 0};
        net.Send(std::move(m));
        ++sent;
      }
    }
  }
  ASSERT_TRUE(net.RunToQuiescence().ok());
  EXPECT_EQ(net.stats().messages_delivered, sent);
  size_t received = 0;
  for (const auto& peer : peers) received += peer->received.size();
  EXPECT_EQ(received, sent);
}

TEST(SimNetworkFaultTest, DropsAreRepairedByRetransmission) {
  FaultPlan plan;
  plan.drop = 0.3;
  SimNetwork net(7, plan);
  ASSERT_TRUE(net.reliable());
  EchoPeer a(1, 2, 0), b(2, 1, 0);
  net.Register(1, &a);
  net.Register(2, &b);
  const uint32_t kMessages = 50;
  for (uint32_t i = 0; i < kMessages; ++i) {
    Message m;
    m.kind = MessageKind::kTuples;
    m.from = 1;
    m.to = 2;
    m.rel = RelId{i, 0};
    net.Send(std::move(m));
  }
  ASSERT_TRUE(net.RunToQuiescence().ok());
  // Exactly-once delivery to the peer despite wire losses.
  ASSERT_EQ(b.received.size(), kMessages);
  std::set<uint32_t> preds;
  for (const Message& m : b.received) preds.insert(m.rel.pred);
  EXPECT_EQ(preds.size(), kMessages);
  EXPECT_GT(net.stats().dropped, 0u);
  EXPECT_GT(net.stats().retransmits, 0u);
  EXPECT_TRUE(net.LogicallyQuiescent());
}

TEST(SimNetworkFaultTest, DuplicatesAreSuppressedBeforeThePeer) {
  FaultPlan plan;
  plan.duplicate = 0.5;
  SimNetwork net(11, plan);
  EchoPeer a(1, 2, 0), b(2, 1, 0);
  net.Register(1, &a);
  net.Register(2, &b);
  const uint32_t kMessages = 40;
  for (uint32_t i = 0; i < kMessages; ++i) {
    Message m;
    m.kind = MessageKind::kTuples;
    m.from = 1;
    m.to = 2;
    m.rel = RelId{i, 0};
    net.Send(std::move(m));
  }
  ASSERT_TRUE(net.RunToQuiescence().ok());
  EXPECT_EQ(b.received.size(), kMessages);  // no duplicate reached the peer
  EXPECT_GT(net.stats().duplicated, 0u);
  EXPECT_GT(net.stats().spurious, 0u);
}

TEST(SimNetworkFaultTest, DelayReorderingStillDeliversEverythingOnce) {
  FaultPlan plan;
  plan.delay = 0.5;
  plan.max_delay_steps = 16;
  SimNetwork net(13, plan);
  EchoPeer a(1, 2, 0), b(2, 1, 0);
  net.Register(1, &a);
  net.Register(2, &b);
  const uint32_t kMessages = 40;
  for (uint32_t i = 0; i < kMessages; ++i) {
    Message m;
    m.kind = MessageKind::kTuples;
    m.from = 1;
    m.to = 2;
    m.rel = RelId{i, 0};
    net.Send(std::move(m));
  }
  ASSERT_TRUE(net.RunToQuiescence().ok());
  ASSERT_EQ(b.received.size(), kMessages);
  std::set<uint32_t> preds;
  bool reordered = false;
  for (size_t i = 0; i < b.received.size(); ++i) {
    preds.insert(b.received[i].rel.pred);
    if (b.received[i].rel.pred != i) reordered = true;
  }
  EXPECT_EQ(preds.size(), kMessages);
  EXPECT_TRUE(reordered);  // the fault actually broke FIFO order
  EXPECT_GT(net.stats().delayed, 0u);
}

TEST(SimNetworkFaultTest, WireAndLogicalSeriesSplitUnderFaults) {
  // Duplicate and retransmit copies hit the wire-level series only; the
  // logical (first-delivery) series matches what the peers consumed — on
  // a lossy wire it equals the lossless traffic of the same workload.
  FaultPlan plan;
  plan.drop = 0.3;
  plan.duplicate = 0.2;
  SimNetwork net(9, plan);
  EchoPeer a(1, 2, 0), b(2, 1, 0);
  net.Register(1, &a);
  net.Register(2, &b);
  const uint32_t kMessages = 30;
  for (uint32_t i = 0; i < kMessages; ++i) {
    Message m;
    m.kind = MessageKind::kTuples;
    m.from = 1;
    m.to = 2;
    m.rel = RelId{i, 0};
    m.tuples = {{1, 2}, {3, 4}};
    net.Send(std::move(m));
  }
  ASSERT_TRUE(net.RunToQuiescence().ok());
  ASSERT_EQ(b.received.size(), kMessages);
  EXPECT_EQ(net.stats().messages_delivered, kMessages);
  EXPECT_EQ(net.stats().tuples_shipped, 2 * kMessages);  // no dup counting
  // Every spurious copy and transport ack still crossed the wire.
  EXPECT_GE(net.stats().wire_messages,
            net.stats().messages_delivered + net.stats().spurious);
  EXPECT_GT(net.stats().wire_messages, net.stats().messages_delivered);
  EXPECT_GT(net.stats().wire_bytes, 0u);
}

TEST(SimNetworkFaultTest, WindowBoundsInFlightAndStillDeliversEverything) {
  FaultPlan plan;
  plan.drop = 0.2;
  plan.reliable.window = 4;
  SimNetwork net(21, plan);
  EchoPeer a(1, 2, 0), b(2, 1, 0);
  net.Register(1, &a);
  net.Register(2, &b);
  const uint32_t kMessages = 40;
  for (uint32_t i = 0; i < kMessages; ++i) {
    Message m;
    m.kind = MessageKind::kTuples;
    m.from = 1;
    m.to = 2;
    m.rel = RelId{i, 0};
    net.Send(std::move(m));
  }
  ASSERT_TRUE(net.RunToQuiescence().ok());
  ASSERT_EQ(b.received.size(), kMessages);
  std::set<uint32_t> preds;
  for (const Message& m : b.received) preds.insert(m.rel.pred);
  EXPECT_EQ(preds.size(), kMessages);  // exactly once, despite the stall
  // The 4-wide window must have backpressured a 40-message burst, and
  // every stalled send must eventually have drained onto the wire.
  EXPECT_GT(net.stats().window_stalls, 0u);
  EXPECT_EQ(net.stats().window_stalls, net.stats().window_drained);
  EXPECT_TRUE(net.LogicallyQuiescent());
}

TEST(SimNetworkTest, StepBudgetEnforced) {
  SimNetwork net(1);
  // Infinite ping-pong.
  class Forever : public PeerNode {
   public:
    explicit Forever(SymbolId id) : id_(id) {}
    Status OnMessage(const Message& message, Network& network) override {
      Message m = message;
      m.from = id_;
      m.to = message.from;
      network.Send(std::move(m));
      return Status::Ok();
    }
    SymbolId id_;
  };
  Forever a(1), b(2);
  net.Register(1, &a);
  net.Register(2, &b);
  Message m;
  m.kind = MessageKind::kTuples;
  m.from = 1;
  m.to = 2;
  net.Send(std::move(m));
  Status s = net.RunToQuiescence(100);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace dqsq::dist
