#include "dist/network.h"

#include <gtest/gtest.h>

namespace dqsq::dist {
namespace {

// Records deliveries; optionally forwards once to a next hop.
class EchoPeer : public PeerNode {
 public:
  EchoPeer(SymbolId id, SymbolId next, int forwards)
      : id_(id), next_(next), forwards_(forwards) {}

  Status OnMessage(const Message& message, SimNetwork& network) override {
    received.push_back(message);
    if (forwards_ > 0) {
      --forwards_;
      Message m = message;
      m.from = id_;
      m.to = next_;
      network.Send(std::move(m));
    }
    return Status::Ok();
  }

  std::vector<Message> received;

 private:
  SymbolId id_;
  SymbolId next_;
  int forwards_;
};

TEST(SimNetworkTest, FifoPerChannel) {
  SimNetwork net(1);
  EchoPeer a(1, 2, 0), b(2, 1, 0);
  net.Register(1, &a);
  net.Register(2, &b);
  for (uint32_t i = 0; i < 10; ++i) {
    Message m;
    m.kind = MessageKind::kTuples;
    m.from = 1;
    m.to = 2;
    m.rel = RelId{i, 0};
    net.Send(std::move(m));
  }
  ASSERT_TRUE(net.RunToQuiescence().ok());
  ASSERT_EQ(b.received.size(), 10u);
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(b.received[i].rel.pred, i);  // channel order preserved
  }
}

TEST(SimNetworkTest, CrossChannelOrderIsSeedDependentButDeterministic) {
  auto run = [](uint64_t seed) {
    SimNetwork net(seed);
    EchoPeer sink(3, 3, 0);
    EchoPeer src1(1, 3, 0), src2(2, 3, 0);
    net.Register(1, &src1);
    net.Register(2, &src2);
    net.Register(3, &sink);
    for (uint32_t i = 0; i < 6; ++i) {
      Message m;
      m.kind = MessageKind::kTuples;
      m.from = (i % 2) ? 1 : 2;
      m.to = 3;
      m.rel = RelId{i, 0};
      net.Send(std::move(m));
    }
    DQSQ_CHECK_OK(net.RunToQuiescence());
    std::vector<uint32_t> order;
    for (const Message& m : sink.received) order.push_back(m.rel.pred);
    return order;
  };
  EXPECT_EQ(run(7), run(7));  // deterministic for a seed
  // Some seed pair interleaves differently (cross-channel asynchrony).
  bool differs = false;
  auto base = run(1);
  for (uint64_t seed = 2; seed < 10 && !differs; ++seed) {
    differs = (run(seed) != base);
  }
  EXPECT_TRUE(differs);
}

TEST(SimNetworkTest, QuiescenceAndStats) {
  SimNetwork net(1);
  EchoPeer a(1, 2, 3), b(2, 1, 3);  // ping-pong, 3 forwards each
  net.Register(1, &a);
  net.Register(2, &b);
  EXPECT_TRUE(net.Quiescent());
  Message m;
  m.kind = MessageKind::kTuples;
  m.from = 1;
  m.to = 2;
  m.tuples = {{1, 2}, {3, 4}};
  net.Send(std::move(m));
  EXPECT_FALSE(net.Quiescent());
  ASSERT_TRUE(net.RunToQuiescence().ok());
  EXPECT_TRUE(net.Quiescent());
  // 1 initial + 6 forwards = 7 deliveries; each carries 2 tuples.
  EXPECT_EQ(net.stats().messages_delivered, 7u);
  EXPECT_EQ(net.stats().tuples_shipped, 14u);
}

TEST(SimNetworkTest, StepBudgetEnforced) {
  SimNetwork net(1);
  // Infinite ping-pong.
  class Forever : public PeerNode {
   public:
    explicit Forever(SymbolId id) : id_(id) {}
    Status OnMessage(const Message& message, SimNetwork& network) override {
      Message m = message;
      m.from = id_;
      m.to = message.from;
      network.Send(std::move(m));
      return Status::Ok();
    }
    SymbolId id_;
  };
  Forever a(1), b(2);
  net.Register(1, &a);
  net.Register(2, &b);
  Message m;
  m.kind = MessageKind::kTuples;
  m.from = 1;
  m.to = 2;
  net.Send(std::move(m));
  Status s = net.RunToQuiescence(100);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace dqsq::dist
