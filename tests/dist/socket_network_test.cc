#include "dist/socket_network.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dqsq::dist {
namespace {

// Records deliveries; optionally echoes each message back to its sender.
class RecordingPeer : public PeerNode {
 public:
  RecordingPeer(SymbolId id, bool echo) : id_(id), echo_(echo) {}

  Status OnMessage(const Message& message, Network& network) override {
    received.push_back(message);
    if (echo_) {
      Message reply = message;
      reply.from = id_;
      reply.to = message.from;
      network.Send(std::move(reply));
    }
    return Status::Ok();
  }

  std::vector<Message> received;

 private:
  SymbolId id_;
  bool echo_;
};

/// Alternates Pump(0) on both networks until `pred` or `rounds` runs out —
/// a deterministic two-process interleaving inside one test process.
template <typename Pred>
void PumpBoth(SocketNetwork& a, SocketNetwork& b, const Pred& pred,
              int rounds = 2000) {
  for (int i = 0; i < rounds && !pred(); ++i) {
    ASSERT_TRUE(a.Pump(1).ok());
    ASSERT_TRUE(b.Pump(1).ok());
  }
  EXPECT_TRUE(pred()) << "condition not reached within pump budget";
}

// The no-supervisor loopback echo: two SocketNetworks with *separate*
// DatalogContexts (so every id differs across them), wired by address
// book only. Proves the socket transport + symbolic codec stack without
// any cluster machinery.
TEST(SocketNetworkTest, EchoAcrossTwoNetworksWithDistinctContexts) {
  DatalogContext ctx_a;  // client side
  DatalogContext ctx_b;  // echo side
  // Different interning orders on purpose.
  ctx_b.symbols().Intern("noise0");
  ctx_b.symbols().Intern("noise1");

  SocketNetwork a(ctx_a);
  SocketNetwork b(ctx_b);
  ASSERT_TRUE(a.Listen("127.0.0.1", 0).ok());
  ASSERT_TRUE(b.Listen("127.0.0.1", 0).ok());

  SymbolId client_a = ctx_a.symbols().Intern("client");
  SymbolId echo_b = ctx_b.symbols().Intern("echo");
  RecordingPeer client(client_a, /*echo=*/false);
  RecordingPeer echo(echo_b, /*echo=*/true);
  a.Register(client_a, &client);
  b.Register(echo_b, &echo);
  a.SetAddress("echo", SocketAddress{"127.0.0.1", b.listen_port()});
  b.SetAddress("client", SocketAddress{"127.0.0.1", a.listen_port()});

  Message m;
  m.kind = MessageKind::kTuples;
  m.from = client_a;
  m.to = ctx_a.symbols().Intern("echo");
  m.rel = RelId{ctx_a.InternPredicate("r", 2), ctx_a.symbols().Intern("echo")};
  m.tuples.push_back(Tuple{
      ctx_a.arena().MakeConstant(ctx_a.symbols().Intern("alpha")),
      ctx_a.arena().MakeApp(ctx_a.symbols().Intern("f"),
                            {ctx_a.arena().MakeConstant(
                                ctx_a.symbols().Intern("beta"))})});
  a.Send(m);

  PumpBoth(a, b, [&] { return !client.received.empty(); });
  ASSERT_EQ(echo.received.size(), 1u);
  ASSERT_EQ(client.received.size(), 1u);

  // The round trip crossed two re-internings; the rendered tuple must be
  // identical to what was sent.
  const Message& back = client.received[0];
  ASSERT_EQ(back.tuples.size(), 1u);
  ASSERT_EQ(back.tuples[0].size(), 2u);
  EXPECT_EQ(ctx_a.arena().ToString(back.tuples[0][0], ctx_a.symbols()),
            ctx_a.arena().ToString(m.tuples[0][0], ctx_a.symbols()));
  EXPECT_EQ(ctx_a.arena().ToString(back.tuples[0][1], ctx_a.symbols()),
            ctx_a.arena().ToString(m.tuples[0][1], ctx_a.symbols()));
  EXPECT_EQ(ctx_a.symbols().Name(back.from), "echo");

  EXPECT_EQ(a.stats().frames_sent, 1u);
  EXPECT_EQ(a.stats().frames_received, 1u);
  EXPECT_EQ(b.stats().messages_delivered, 1u);
  EXPECT_EQ(b.stats().tuples_shipped, 1u);
  EXPECT_GT(a.stats().bytes_sent, kFrameHeaderBytes);
  EXPECT_EQ(a.stats().framing_errors, 0u);
}

TEST(SocketNetworkTest, LocalPeersLoopBackWithoutSockets) {
  DatalogContext ctx;
  SocketNetwork net(ctx);  // no Listen: purely local
  SymbolId a_id = ctx.symbols().Intern("a");
  SymbolId b_id = ctx.symbols().Intern("b");
  RecordingPeer a(a_id, false), b(b_id, false);
  net.Register(a_id, &a);
  net.Register(b_id, &b);

  Message m;
  m.kind = MessageKind::kAck;
  m.from = a_id;
  m.to = b_id;
  net.Send(m);
  ASSERT_TRUE(net.Pump(0).ok());
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(net.stats().bytes_sent, 0u);  // never touched a socket
  EXPECT_EQ(net.stats().messages_delivered, 1u);
}

TEST(SocketNetworkTest, SendToUnknownPeerSurfacesOnNextPump) {
  DatalogContext ctx;
  SocketNetwork net(ctx);
  Message m;
  m.kind = MessageKind::kAck;
  m.from = ctx.symbols().Intern("a");
  m.to = ctx.symbols().Intern("nowhere");
  net.Send(m);
  Status status = net.Pump(0);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("address book"), std::string::npos);
  EXPECT_TRUE(net.Pump(0).ok());  // the error is reported once
}

TEST(SocketNetworkTest, ControlFramesReachTheHandlerWithReplies) {
  DatalogContext ctx_a, ctx_b;
  SocketNetwork a(ctx_a), b(ctx_b);
  ASSERT_TRUE(a.Listen("127.0.0.1", 0).ok());
  ASSERT_TRUE(b.Listen("127.0.0.1", 0).ok());

  std::string got_on_b;
  b.SetControlHandler([&](const Frame& frame, uint64_t conn_id) -> Status {
    EXPECT_EQ(frame.type, FrameType::kHello);
    got_on_b = frame.payload;
    return b.SendControlOn(conn_id, FrameType::kStart, "welcome " +
                                                           frame.payload);
  });
  std::string got_on_a;
  a.SetControlHandler([&](const Frame& frame, uint64_t) -> Status {
    EXPECT_EQ(frame.type, FrameType::kStart);
    got_on_a = frame.payload;
    return Status::Ok();
  });

  ASSERT_TRUE(a.SendControl(SocketAddress{"127.0.0.1", b.listen_port()},
                            FrameType::kHello, "peer-7")
                  .ok());
  PumpBoth(a, b, [&] { return !got_on_a.empty(); });
  EXPECT_EQ(got_on_b, "peer-7");
  EXPECT_EQ(got_on_a, "welcome peer-7");
}

// A raw TCP client that writes garbage: the receiving Pump must fail,
// count a framing error, and drop only that connection.
TEST(SocketNetworkTest, GarbageBytesPoisonOnlyTheirConnection) {
  DatalogContext ctx;
  SocketNetwork net(ctx);
  ASSERT_TRUE(net.Listen("127.0.0.1", 0).ok());

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(net.listen_port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char junk[] = "garbage garbage garbage garbage";
  ASSERT_GT(write(fd, junk, sizeof(junk)), 0);

  Status status = Status::Ok();
  for (int i = 0; i < 100 && status.ok() && net.stats().framing_errors == 0;
       ++i) {
    status = net.Pump(10);
  }
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(net.stats().framing_errors, 1u);
  EXPECT_TRUE(net.Pump(0).ok());  // the network itself stays usable
  close(fd);
}

// Regression for the FlushConnection send loop: with a tiny SO_SNDBUF the
// kernel accepts only part of each write (short writes, then EAGAIN), so
// a large burst must survive many resume-at-offset flush rounds. A wrong
// offset resume corrupts the byte stream, which the receiver's framing
// layer would report — so "everything delivered, zero framing errors"
// pins the path.
TEST(SocketNetworkTest, TinySendBufferDeliversLargeBurstIntact) {
  DatalogContext ctx_a, ctx_b;
  SocketNetworkOptions small;
  small.sndbuf_bytes = 4096;  // kernel clamps to its minimum; still tiny
  SocketNetwork a(ctx_a, small);
  SocketNetwork b(ctx_b);
  ASSERT_TRUE(a.Listen("127.0.0.1", 0).ok());
  ASSERT_TRUE(b.Listen("127.0.0.1", 0).ok());

  SymbolId client_a = ctx_a.symbols().Intern("client");
  SymbolId sink_b = ctx_b.symbols().Intern("sink");
  RecordingPeer client(client_a, /*echo=*/false);
  RecordingPeer sink(sink_b, /*echo=*/false);
  a.Register(client_a, &client);
  b.Register(sink_b, &sink);
  a.SetAddress("sink", SocketAddress{"127.0.0.1", b.listen_port()});

  // ~200 messages x 50 wide tuples: far beyond any clamped send buffer,
  // queued in one burst so the outbuf backlog spans many flush rounds.
  const int kMessages = 200;
  const int kTuplesPer = 50;
  const RelId rel{ctx_a.InternPredicate("r", 4),
                  ctx_a.symbols().Intern("sink")};
  for (int i = 0; i < kMessages; ++i) {
    Message m;
    m.kind = MessageKind::kTuples;
    m.from = client_a;
    m.to = ctx_a.symbols().Intern("sink");
    m.rel = rel;
    for (int j = 0; j < kTuplesPer; ++j) {
      Tuple t;
      for (int c = 0; c < 4; ++c) {
        t.push_back(ctx_a.arena().MakeConstant(ctx_a.symbols().Intern(
            "m" + std::to_string(i) + "t" + std::to_string(j) + "c" +
            std::to_string(c))));
      }
      m.tuples.push_back(std::move(t));
    }
    a.Send(std::move(m));
  }

  PumpBoth(a, b, [&] { return sink.received.size() == size_t(kMessages); },
           20000);
  ASSERT_EQ(sink.received.size(), size_t(kMessages));
  EXPECT_EQ(b.stats().tuples_shipped, size_t(kMessages) * kTuplesPer);
  EXPECT_EQ(b.stats().framing_errors, 0u);
  EXPECT_EQ(a.stats().frames_sent, size_t(kMessages));
  // Every payload survived the re-interning round trip in order.
  for (int i = 0; i < kMessages; ++i) {
    const Message& got = sink.received[i];
    ASSERT_EQ(got.tuples.size(), size_t(kTuplesPer));
    EXPECT_EQ(ctx_b.arena().ToString(got.tuples[0][0], ctx_b.symbols()),
              "m" + std::to_string(i) + "t0c0");
  }
}

TEST(SocketNetworkTest, PumpUntilTimesOut) {
  DatalogContext ctx;
  SocketNetwork net(ctx);
  Status status = net.PumpUntil([] { return false; }, 30);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("timed out"), std::string::npos);
}

}  // namespace
}  // namespace dqsq::dist
