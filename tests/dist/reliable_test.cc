#include "dist/reliable.h"

#include <gtest/gtest.h>

#include "dist/dnaive.h"
#include "dist/dqsq.h"
#include "dist/network.h"
#include "tests/test_util.h"

namespace dqsq::dist {
namespace {

using ::dqsq::testing::AnswerStrings;

Message Basic(SymbolId from, SymbolId to) {
  Message m;
  m.kind = MessageKind::kTuples;
  m.from = from;
  m.to = to;
  return m;
}

TEST(ReliableTransportTest, StampsPerChannelSequenceNumbers) {
  ReliableTransport transport;
  Message a1 = Basic(1, 2), a2 = Basic(1, 2), b1 = Basic(2, 1);
  transport.StampOutgoing(a1, 0);
  transport.StampOutgoing(a2, 0);
  transport.StampOutgoing(b1, 0);
  EXPECT_EQ(a1.seq, 1u);
  EXPECT_EQ(a2.seq, 2u);   // same channel: consecutive
  EXPECT_EQ(b1.seq, 1u);   // reverse channel: independent numbering
  EXPECT_TRUE(transport.HasUnacked());
}

TEST(ReliableTransportTest, DedupSuppressesSecondDelivery) {
  ReliableTransport transport;
  Message m = Basic(1, 2);
  transport.StampOutgoing(m, 0);
  EXPECT_EQ(transport.OnWireDelivery(m, 1),
            ReliableTransport::Disposition::kDeliverFirst);
  EXPECT_EQ(transport.OnWireDelivery(m, 2),
            ReliableTransport::Disposition::kDuplicate);
  EXPECT_TRUE(transport.Seen({1, 2}, 1));
}

TEST(ReliableTransportTest, OutOfOrderDeliveryDedupsAndCatchesUp) {
  ReliableTransport transport;
  Message m1 = Basic(1, 2), m2 = Basic(1, 2), m3 = Basic(1, 2);
  transport.StampOutgoing(m1, 0);
  transport.StampOutgoing(m2, 0);
  transport.StampOutgoing(m3, 0);
  // Delay-reordered wire: 3 arrives first, then 1, then 3 again, then 2.
  EXPECT_EQ(transport.OnWireDelivery(m3, 1),
            ReliableTransport::Disposition::kDeliverFirst);
  EXPECT_EQ(transport.OnWireDelivery(m1, 2),
            ReliableTransport::Disposition::kDeliverFirst);
  EXPECT_EQ(transport.OnWireDelivery(m3, 3),
            ReliableTransport::Disposition::kDuplicate);
  EXPECT_EQ(transport.OnWireDelivery(m2, 4),
            ReliableTransport::Disposition::kDeliverFirst);
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    EXPECT_TRUE(transport.Seen({1, 2}, seq)) << seq;
  }
  EXPECT_TRUE(transport.AllPayloadDelivered());
}

TEST(ReliableTransportTest, RetransmitsAfterTimeoutWithBackoff) {
  ReliableConfig config;
  config.retransmit_timeout = 10;
  config.max_backoff = 4;
  ReliableTransport transport(config);
  Message m = Basic(1, 2);
  transport.StampOutgoing(m, 0);  // due at 10
  EXPECT_TRUE(transport.PollWire(9).empty());
  ASSERT_EQ(transport.NextDue(), std::optional<uint64_t>(10));
  auto first = transport.PollWire(10);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_TRUE(first[0].retransmit);
  EXPECT_EQ(first[0].seq, m.seq);
  // Backoff doubled: next due is 10 + 2*10.
  EXPECT_EQ(transport.NextDue(), std::optional<uint64_t>(30));
  EXPECT_TRUE(transport.PollWire(29).empty());
  EXPECT_EQ(transport.PollWire(30).size(), 1u);
}

TEST(ReliableTransportTest, PiggybackedAckClearsRetransmitQueue) {
  ReliableTransport transport;
  Message data = Basic(1, 2);
  transport.StampOutgoing(data, 0);
  EXPECT_EQ(transport.OnWireDelivery(data, 1),
            ReliableTransport::Disposition::kDeliverFirst);
  // Reverse traffic from 2 to 1 carries the cumulative ack for (1,2).
  Message reply = Basic(2, 1);
  transport.StampOutgoing(reply, 2);
  EXPECT_EQ(reply.ack, 1u);
  EXPECT_EQ(transport.OnWireDelivery(reply, 3),
            ReliableTransport::Disposition::kDeliverFirst);
  // 1's retransmit entry for seq 1 is gone; only 2's reply is unacked
  // (plus the standalone ack 1 owes for it).
  auto due = transport.PollWire(1'000'000);
  size_t retransmits = 0;
  for (const Message& m : due) {
    if (m.retransmit) {
      ++retransmits;
      EXPECT_EQ(m.from, 2u);  // the reply, not the original data message
    } else {
      EXPECT_EQ(m.kind, MessageKind::kTransportAck);
    }
  }
  EXPECT_EQ(retransmits, 1u);
}

TEST(ReliableTransportTest, StandaloneAckFlushesAfterDelayOnSilence) {
  ReliableConfig config;
  config.ack_delay = 4;
  // Push retransmits far out so only the ack is due.
  config.retransmit_timeout = 1000;
  ReliableTransport transport(config);
  Message m = Basic(1, 2);
  transport.StampOutgoing(m, 0);
  EXPECT_EQ(transport.OnWireDelivery(m, 5),
            ReliableTransport::Disposition::kDeliverFirst);
  EXPECT_TRUE(transport.PollWire(8).empty());  // owed since 5, due at 9
  auto acks = transport.PollWire(9);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].kind, MessageKind::kTransportAck);
  EXPECT_EQ(acks[0].from, 2u);
  EXPECT_EQ(acks[0].to, 1u);
  EXPECT_EQ(acks[0].ack, 1u);
  // Delivering the ack empties the sender's queue.
  EXPECT_EQ(transport.OnWireDelivery(acks[0], 10),
            ReliableTransport::Disposition::kControl);
  EXPECT_FALSE(transport.HasUnacked());
  EXPECT_FALSE(transport.NextDue().has_value());
}

TEST(ReliableTransportTest, StandaloneAckRefiresWithBackoffUntilConfirmed) {
  ReliableConfig config;
  config.ack_delay = 4;
  config.retransmit_timeout = 1000;
  ReliableTransport transport(config);
  Message m = Basic(1, 2);
  transport.StampOutgoing(m, 0);
  EXPECT_EQ(transport.OnWireDelivery(m, 1),
            ReliableTransport::Disposition::kDeliverFirst);
  // The first standalone ack is dropped by the wire (never delivered):
  // another flushes after a backed-off silence, so a lost ack never
  // strands the sender until its retransmit timeout — but repeated
  // re-emissions slow down geometrically (uncapped: O(log horizon) acks
  // per owed episode), keeping total standalone-ack production below the
  // wire's drain rate however many channels owe at once. Regression for
  // the sharded-cluster livelock, where ~K² channels re-emitting every
  // ack_delay steps outran the wire's drain rate and the discharging acks
  // could never get through the flood.
  auto first = transport.PollWire(5);  // owed since 1, due at 5
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].kind, MessageKind::kTransportAck);
  EXPECT_TRUE(transport.PollWire(12).empty());  // re-armed at 5, due at 13
  auto second = transport.PollWire(13);  // backoff 2: 5 + 4*2
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].kind, MessageKind::kTransportAck);
  EXPECT_TRUE(transport.PollWire(28).empty());  // backoff 4: due at 29
  ASSERT_EQ(transport.PollWire(29).size(), 1u);
  // The interval keeps doubling: re-armed at 29, backoff 8, due at 61.
  EXPECT_EQ(transport.NextDue(), std::optional<uint64_t>(61));
  // A duplicate delivery (the sender's retransmit loop is live) resets the
  // backoff so the discharging ack goes out promptly again.
  Message dup = m;
  EXPECT_EQ(transport.OnWireDelivery(dup, 40),
            ReliableTransport::Disposition::kDuplicate);
  EXPECT_EQ(transport.NextDue(), std::optional<uint64_t>(44));
  auto prompt = transport.PollWire(44);
  ASSERT_EQ(prompt.size(), 1u);
  // Delivering it discharges the debt: no further standalone acks.
  EXPECT_EQ(transport.OnWireDelivery(prompt[0], 45),
            ReliableTransport::Disposition::kControl);
  EXPECT_FALSE(transport.NextDue().has_value());
}

TEST(ReliableTransportTest, LostPiggybackedAckCostsNoSpuriousRetransmit) {
  // Regression for the lost-piggyback-ack bug: stamping a reply used to
  // clear the receiver's owed-ack state before the reply survived the
  // fault plan, so a dropped reply silently lost the ack and the sender
  // only recovered via a spurious retransmit round trip.
  ReliableConfig config;
  config.ack_delay = 4;
  config.retransmit_timeout = 100;
  ReliableTransport transport(config);
  Message data = Basic(1, 2);
  transport.StampOutgoing(data, 0);
  EXPECT_EQ(transport.OnWireDelivery(data, 1),
            ReliableTransport::Disposition::kDeliverFirst);
  // The reply piggybacks the cumulative ack — and is dropped by the wire.
  Message reply = Basic(2, 1);
  transport.StampOutgoing(reply, 2);
  EXPECT_EQ(reply.ack, 1u);
  // The ack stays owed: a standalone ack flushes after ack_delay of
  // silence, long before peer 1's retransmit timeout.
  auto traffic = transport.PollWire(2 + config.ack_delay);
  ASSERT_EQ(traffic.size(), 1u);
  EXPECT_EQ(traffic[0].kind, MessageKind::kTransportAck);
  EXPECT_EQ(traffic[0].to, 1u);
  EXPECT_EQ(traffic[0].ack, 1u);
  EXPECT_EQ(transport.OnWireDelivery(traffic[0], 8),
            ReliableTransport::Disposition::kControl);
  // Pin the retransmit count for this scenario: advancing past the
  // retransmit horizon resends only the dropped reply, never the data
  // message whose piggybacked ack was lost.
  size_t data_retransmits = 0, reply_retransmits = 0;
  for (const Message& out : transport.PollWire(200)) {
    if (!out.retransmit) continue;
    (out.from == 1u ? data_retransmits : reply_retransmits)++;
  }
  EXPECT_EQ(data_retransmits, 0u);
  EXPECT_EQ(reply_retransmits, 1u);
}

TEST(ReliableTransportTest, RetransmitRearmsTheStandaloneAckTimer) {
  // A retransmitted message refreshes its piggybacked ack; that must also
  // re-arm the reverse channel's standalone-ack timer so the superseded
  // kTransportAck does not fire alongside it.
  ReliableConfig config;
  config.ack_delay = 8;
  config.retransmit_timeout = 6;
  ReliableTransport transport(config);
  Message data = Basic(1, 2);
  transport.StampOutgoing(data, 0);
  EXPECT_EQ(transport.OnWireDelivery(data, 1),
            ReliableTransport::Disposition::kDeliverFirst);
  Message reply = Basic(2, 1);
  transport.StampOutgoing(reply, 2);  // carries ack=1; assume it is lost
  // At t=8 the retransmits fire; the reply's copy carries a fresh ack,
  // re-arming the owed-ack timer (owed since 1, originally due at 9).
  bool reply_retransmitted = false;
  for (const Message& out : transport.PollWire(8)) {
    EXPECT_TRUE(out.retransmit);  // no standalone ack due yet
    if (out.from == 2u) {
      reply_retransmitted = true;
      EXPECT_EQ(out.ack, 1u);
    }
  }
  EXPECT_TRUE(reply_retransmitted);
  // Without re-arming, the superseded standalone ack would still fire at
  // 9; re-armed at 8, it is not due before 16 (and the next retransmit
  // backoff lands at 20).
  for (const Message& out : transport.PollWire(15)) {
    EXPECT_NE(out.kind, MessageKind::kTransportAck)
        << "stale standalone ack fired alongside the retransmit copy";
  }
}

TEST(ReliableTransportTest, WindowFullStallsAndDrainsInFifoOrder) {
  ReliableConfig config;
  config.window = 2;
  ReliableTransport transport(config);
  Message m1 = Basic(1, 2), m2 = Basic(1, 2), m3 = Basic(1, 2),
          m4 = Basic(1, 2);
  EXPECT_TRUE(transport.StampOutgoing(m1, 0));
  EXPECT_TRUE(transport.StampOutgoing(m2, 0));
  EXPECT_FALSE(transport.StampOutgoing(m3, 0));  // window full: queued
  EXPECT_FALSE(transport.StampOutgoing(m4, 0));
  EXPECT_EQ(m3.seq, 3u);  // still sequenced in FIFO order
  EXPECT_EQ(m4.seq, 4u);
  EXPECT_EQ(transport.stats().window_stalls, 2u);
  EXPECT_TRUE(transport.HasUnacked());
  EXPECT_FALSE(transport.AllPayloadDelivered());  // queued payload pending
  // Nothing drains while the window is closed.
  EXPECT_TRUE(transport.PollWire(1).empty());
  // Acking seq 1 opens one slot: exactly one queued send drains.
  EXPECT_EQ(transport.OnWireDelivery(m1, 1),
            ReliableTransport::Disposition::kDeliverFirst);
  Message ack;
  ack.kind = MessageKind::kTransportAck;
  ack.from = 2;
  ack.to = 1;
  ack.ack = 1;
  EXPECT_EQ(transport.OnWireDelivery(ack, 2),
            ReliableTransport::Disposition::kControl);
  ASSERT_TRUE(transport.NextDue().has_value());
  EXPECT_LE(*transport.NextDue(), 2u);  // drain is immediately due
  auto drained = transport.PollWire(3);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].seq, 3u);
  EXPECT_FALSE(drained[0].retransmit);
  EXPECT_EQ(transport.stats().window_drained, 1u);
}

TEST(ReliableTransportTest, SackRepairsOnlyTheHole) {
  ReliableConfig config;
  config.retransmit_timeout = 10;
  config.ack_delay = 4;
  ReliableTransport transport(config);
  Message m[6];
  for (int i = 1; i <= 5; ++i) {
    m[i] = Basic(1, 2);
    transport.StampOutgoing(m[i], 0);
  }
  // Seq 2 is lost; 1, 3, 4, 5 arrive.
  EXPECT_EQ(transport.OnWireDelivery(m[1], 1),
            ReliableTransport::Disposition::kDeliverFirst);
  for (int i = 3; i <= 5; ++i) {
    EXPECT_EQ(transport.OnWireDelivery(m[i], i),
              ReliableTransport::Disposition::kDeliverFirst);
  }
  // The standalone ack advertises cum=1 plus the SACK block [3,5].
  auto acks = transport.PollWire(5);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].ack, 1u);
  ASSERT_EQ(acks[0].sack.size(), 1u);
  EXPECT_EQ(acks[0].sack[0], (SackBlock{3, 5}));
  EXPECT_EQ(transport.OnWireDelivery(acks[0], 6),
            ReliableTransport::Disposition::kControl);
  EXPECT_EQ(transport.stats().sacked, 3u);
  // At the retransmit horizon only the hole (seq 2) goes out again — with
  // cumulative-only acks all of 2..5 would have been resent.
  size_t retransmits = 0;
  for (const Message& out : transport.PollWire(20)) {
    if (!out.retransmit) continue;
    ++retransmits;
    EXPECT_EQ(out.seq, 2u);
  }
  EXPECT_EQ(retransmits, 1u);
  // Repairing the hole advances cum over the SACKed range in one step.
  Message hole = m[2];
  EXPECT_EQ(transport.OnWireDelivery(hole, 21),
            ReliableTransport::Disposition::kDeliverFirst);
  EXPECT_TRUE(transport.AllPayloadDelivered());
}

TEST(ReliableTransportTest, SackBlockListIsBounded) {
  ReliableConfig config;
  config.max_sack_blocks = 2;
  config.ack_delay = 1;
  ReliableTransport transport(config);
  Message m[10];
  for (int i = 1; i <= 9; ++i) {
    m[i] = Basic(1, 2);
    transport.StampOutgoing(m[i], 0);
  }
  // Deliver only the even seqs: out-of-order set {2,4,6,8}, four blocks.
  for (int i = 2; i <= 8; i += 2) {
    EXPECT_EQ(transport.OnWireDelivery(m[i], i),
              ReliableTransport::Disposition::kDeliverFirst);
  }
  auto acks = transport.PollWire(10);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].ack, 0u);
  ASSERT_EQ(acks[0].sack.size(), 2u);  // bounded: lowest blocks first
  EXPECT_EQ(acks[0].sack[0], (SackBlock{2, 2}));
  EXPECT_EQ(acks[0].sack[1], (SackBlock{4, 4}));
}

TEST(ReliableTransportTest, FastRetransmitFiresOnDupSackEvidenceBeforeRto) {
  ReliableConfig config;
  config.retransmit_timeout = 100;  // far horizon: only fast retx can fire
  config.ack_delay = 1;
  config.fast_retransmit_dupacks = 3;
  ReliableTransport transport(config);
  Message m[6];
  for (int i = 1; i <= 5; ++i) {
    m[i] = Basic(1, 2);
    transport.StampOutgoing(m[i], 0);
  }
  // Seq 1 is lost. Each later arrival provokes an ack whose SACK blocks
  // cover data above the hole — one piece of dup evidence apiece.
  uint64_t now = 1;
  for (int i = 2; i <= 4; ++i) {
    EXPECT_EQ(transport.OnWireDelivery(m[i], now++),
              ReliableTransport::Disposition::kDeliverFirst);
    auto acks = transport.PollWire(now++);
    ASSERT_EQ(acks.size(), 1u);
    EXPECT_EQ(acks[0].ack, 0u);  // the hole holds cum at 0
    EXPECT_EQ(transport.OnWireDelivery(acks[0], now++),
              ReliableTransport::Disposition::kControl);
  }
  // Third piece of evidence: seq 1 is due immediately, long before its RTO.
  EXPECT_EQ(transport.stats().fast_retransmits, 1u);
  ASSERT_LT(*transport.NextDue(), config.retransmit_timeout);
  auto resent = transport.PollWire(now);
  ASSERT_EQ(resent.size(), 1u);
  EXPECT_TRUE(resent[0].retransmit);
  EXPECT_EQ(resent[0].seq, 1u);
  // One-shot: the early resend does not repeat; the entry falls back to
  // the timeout path (due re-armed at RTO x backoff).
  EXPECT_TRUE(transport.PollWire(now + 2).empty());
  EXPECT_EQ(transport.OnWireDelivery(resent[0], now + 3),
            ReliableTransport::Disposition::kDeliverFirst);
  EXPECT_EQ(transport.stats().fast_retransmits, 1u);
}

TEST(ReliableTransportTest, KarnExcludesRetransmittedEntriesFromRtt) {
  ReliableConfig config;
  config.retransmit_timeout = 10;
  ReliableTransport transport(config);
  Message m = Basic(1, 2);
  transport.StampOutgoing(m, 0);
  ASSERT_EQ(transport.PollWire(10).size(), 1u);  // retransmitted: ambiguous
  EXPECT_EQ(transport.OnWireDelivery(m, 12),
            ReliableTransport::Disposition::kDeliverFirst);
  Message ack;
  ack.kind = MessageKind::kTransportAck;
  ack.from = 2;
  ack.to = 1;
  ack.ack = 1;
  EXPECT_EQ(transport.OnWireDelivery(ack, 13),
            ReliableTransport::Disposition::kControl);
  // Karn's rule: the ack of a retransmitted entry never samples RTT.
  EXPECT_EQ(transport.stats().rtt_samples, 0u);
  // A clean exchange does sample.
  Message m2 = Basic(1, 2);
  transport.StampOutgoing(m2, 13);
  EXPECT_EQ(transport.OnWireDelivery(m2, 15),
            ReliableTransport::Disposition::kDeliverFirst);
  ack.ack = 2;
  EXPECT_EQ(transport.OnWireDelivery(ack, 16),
            ReliableTransport::Disposition::kControl);
  EXPECT_EQ(transport.stats().rtt_samples, 1u);
}

TEST(ReliableTransportTest, AdaptiveRtoTracksMeasuredRttAndBackoffIsCapped) {
  ReliableConfig config;
  config.retransmit_timeout = 10;
  config.max_backoff = 4;
  config.rto_min = 4;
  ReliableTransport transport(config);
  // Feed three clean exchanges with RTT 40 each: SRTT converges to 40 and
  // the next send's timeout reflects it instead of the initial 10.
  Message ack;
  ack.kind = MessageKind::kTransportAck;
  ack.from = 2;
  ack.to = 1;
  for (uint64_t i = 0; i < 3; ++i) {
    uint64_t t = 100 * i;
    Message m = Basic(1, 2);
    transport.StampOutgoing(m, t);
    EXPECT_EQ(transport.OnWireDelivery(m, t + 39),
              ReliableTransport::Disposition::kDeliverFirst);
    ack.ack = i + 1;
    EXPECT_EQ(transport.OnWireDelivery(ack, t + 40),
              ReliableTransport::Disposition::kControl);
  }
  EXPECT_EQ(transport.stats().rtt_samples, 3u);
  const uint64_t rto = transport.stats().last_rto;
  EXPECT_GE(rto, 40u);  // at least the smoothed RTT
  Message probe = Basic(1, 2);
  transport.StampOutgoing(probe, 1000);
  ASSERT_EQ(transport.NextDue(), std::optional<uint64_t>(1000 + rto));
  // Backoff doubles per retransmit but is capped at max_backoff × RTO.
  uint64_t now = 1000 + rto;
  for (uint64_t expected : {2u, 4u, 4u, 4u}) {
    auto out = transport.PollWire(now);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].retransmit);
    ASSERT_EQ(transport.NextDue(), std::optional<uint64_t>(now + rto * expected))
        << "backoff multiplier should be " << expected;
    now += rto * expected;
  }
}

// ---------------------------------------------------------------------------
// End-to-end property: under every fault plan, both distributed engines
// return the lossless answers and termination detection stays sound.
// ---------------------------------------------------------------------------

// The paper's Figure 3 distributed program (three peers, mutual recursion
// across all of them).
const char* kFigure3 = R"(
  r@r(X, Y) :- a@r(X, Y).
  r@r(X, Y) :- s@s(X, Z), t@t(Z, Y).
  s@s(X, Y) :- r@r(X, Y), b@s(Y, Z).
  t@t(X, Y) :- c@t(X, Y).
  a@r("1", "2").
  a@r("2", "3").
  a@r("7", "8").
  b@s("2", "5").
  b@s("3", "6").
  c@t("2", "4").
  c@t("3", "9").
)";

struct PlanCase {
  const char* name;
  FaultPlan plan;
};

std::vector<PlanCase> FaultMatrix() {
  std::vector<PlanCase> cases;
  cases.push_back({"lossless", FaultPlan{}});
  FaultPlan drop;
  drop.drop = 0.1;
  cases.push_back({"drop=0.1", drop});
  FaultPlan dup;
  dup.duplicate = 0.1;
  cases.push_back({"dup=0.1", dup});
  FaultPlan delay;
  delay.delay = 0.3;
  delay.max_delay_steps = 12;
  cases.push_back({"delay=0.3", delay});
  FaultPlan all;
  all.drop = 0.1;
  all.duplicate = 0.1;
  all.delay = 0.2;
  cases.push_back({"all-three", all});
  return cases;
}

struct RunOutcome {
  std::vector<std::string> answers;  // rendered while the context is alive
  NetworkStats stats;
  bool quiescent_at_detection = false;
};

StatusOr<RunOutcome> Solve(bool qsq, uint64_t seed, const FaultPlan& plan) {
  DatalogContext ctx;
  auto program = ParseProgram(kFigure3, ctx);
  DQSQ_CHECK_OK(program.status());
  auto query = ParseQuery("r@r(\"1\", Y)", ctx);
  DQSQ_CHECK_OK(query.status());
  DistOptions opts;
  opts.seed = seed;
  opts.faults = plan;
  DQSQ_ASSIGN_OR_RETURN(DistResult result,
                        qsq ? DistQsqSolve(ctx, *program, *query, opts)
                            : DistNaiveSolve(ctx, *program, *query, opts));
  RunOutcome outcome;
  outcome.answers = AnswerStrings(result.answers, ctx);
  outcome.stats = result.net_stats;
  outcome.quiescent_at_detection = result.quiescent_at_detection;
  return outcome;
}

TEST(FaultInjectionPropertyTest, AnswersMatchLosslessAcrossSeedsAndPlans) {
  for (bool qsq : {false, true}) {
    auto lossless = Solve(qsq, /*seed=*/1, FaultPlan{});
    ASSERT_TRUE(lossless.ok()) << lossless.status().ToString();
    const auto expected = lossless->answers;
    ASSERT_FALSE(expected.empty());
    for (const PlanCase& c : FaultMatrix()) {
      for (uint64_t seed = 1; seed <= 20; ++seed) {
        auto result = Solve(qsq, seed, c.plan);
        ASSERT_TRUE(result.ok())
            << (qsq ? "dqsq" : "dnaive") << " plan=" << c.name << " seed="
            << seed << ": " << result.status().ToString();
        EXPECT_EQ(result->answers, expected)
            << (qsq ? "dqsq" : "dnaive") << " plan=" << c.name
            << " seed=" << seed;
        EXPECT_TRUE(result->quiescent_at_detection)
            << c.name << " seed=" << seed;
        if (!c.plan.active()) {
          EXPECT_EQ(result->stats.dropped, 0u);
          EXPECT_EQ(result->stats.retransmits, 0u);
          EXPECT_EQ(result->stats.spurious, 0u);
          EXPECT_EQ(result->stats.transport_acks, 0u);
        }
      }
    }
  }
}

TEST(FaultInjectionPropertyTest, AdversarialSoakExercisesTheWholeShim) {
  // High drop + maximal reorder — the plan that used to trigger
  // retransmit storms under cumulative-only acks — with a window small
  // enough to stall. Aggregated over seeds, every fault leg and every
  // transport mechanism (SACK, window, retransmit, dedup) fires, and the
  // logical traffic still matches the lossless run exactly.
  auto lossless = Solve(/*qsq=*/true, /*seed=*/1, FaultPlan{});
  ASSERT_TRUE(lossless.ok());
  NetworkStats agg;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    FaultPlan adversarial;
    adversarial.drop = 0.25;
    adversarial.duplicate = 0.1;
    adversarial.delay = 0.5;
    adversarial.max_delay_steps = 32;
    adversarial.reliable.window = 2;
    auto result = Solve(/*qsq=*/true, seed, adversarial);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->answers, lossless->answers) << "seed=" << seed;
    EXPECT_TRUE(result->quiescent_at_detection) << "seed=" << seed;
    EXPECT_EQ(result->stats.messages_delivered,
              lossless->stats.messages_delivered)
        << "first-delivery count must match lossless, seed=" << seed;
    EXPECT_EQ(result->stats.tuples_shipped, lossless->stats.tuples_shipped)
        << "seed=" << seed;
    agg.dropped += result->stats.dropped;
    agg.duplicated += result->stats.duplicated;
    agg.delayed += result->stats.delayed;
    agg.retransmits += result->stats.retransmits;
    agg.spurious += result->stats.spurious;
    agg.sacked += result->stats.sacked;
    agg.fast_retransmits += result->stats.fast_retransmits;
    agg.window_stalls += result->stats.window_stalls;
    agg.window_drained += result->stats.window_drained;
    agg.rtt_samples += result->stats.rtt_samples;
    agg.wire_messages += result->stats.wire_messages;
  }
  EXPECT_GT(agg.dropped, 0u);
  EXPECT_GT(agg.duplicated, 0u);
  EXPECT_GT(agg.delayed, 0u);
  EXPECT_GT(agg.retransmits, 0u);   // every drop must be repaired
  EXPECT_GT(agg.spurious, 0u);      // duplicates must be suppressed
  EXPECT_GT(agg.sacked, 0u);        // selective acks must clear entries
  // Dup-SACK evidence must trigger early resends under this much loss,
  // and every fast retransmit is also counted as a retransmit.
  EXPECT_GT(agg.fast_retransmits, 0u);
  EXPECT_LE(agg.fast_retransmits, agg.retransmits);
  EXPECT_GT(agg.window_stalls, 0u);  // the 2-wide window must backpressure
  EXPECT_EQ(agg.window_stalls, agg.window_drained);  // every stall drains
  EXPECT_GT(agg.rtt_samples, 0u);   // the RTO estimator must engage
  // The wire saw strictly more copies than the peers consumed.
  EXPECT_GT(agg.wire_messages, 10 * lossless->stats.messages_delivered);
}

TEST(FaultInjectionPropertyTest, SackReducesRetransmitsVsCumulativeOnly) {
  // Same seeds and fault plan, SACK+adaptive-RTO vs the cumulative-only
  // configuration: aggregated retransmits must drop (the E3 lossy bench
  // pins the ≥30% figure; this guards the direction at test speed).
  FaultPlan plan;
  plan.drop = 0.15;
  plan.duplicate = 0.05;
  plan.delay = 0.4;
  plan.max_delay_steps = 24;
  FaultPlan cumulative = plan;
  cumulative.reliable.max_sack_blocks = 0;
  cumulative.reliable.adaptive_rto = false;
  cumulative.reliable.window = 0;
  size_t sack_retransmits = 0, cum_retransmits = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto with_sack = Solve(/*qsq=*/true, seed, plan);
    auto without = Solve(/*qsq=*/true, seed, cumulative);
    ASSERT_TRUE(with_sack.ok()) << with_sack.status().ToString();
    ASSERT_TRUE(without.ok()) << without.status().ToString();
    EXPECT_EQ(with_sack->answers, without->answers) << "seed=" << seed;
    sack_retransmits += with_sack->stats.retransmits;
    cum_retransmits += without->stats.retransmits;
  }
  EXPECT_LT(sack_retransmits, cum_retransmits);
}

TEST(FaultInjectionPropertyTest, LosslessPlanLeavesTrafficByteIdentical) {
  // Zero-overhead default: an all-zero plan must not change message or
  // tuple counts relative to a network built without any plan at all.
  auto base = Solve(/*qsq=*/true, /*seed=*/3, FaultPlan{});
  ASSERT_TRUE(base.ok());
  FaultPlan zero;
  zero.max_delay_steps = 32;  // inert while probabilities are 0
  auto zeroed = Solve(/*qsq=*/true, /*seed=*/3, zero);
  ASSERT_TRUE(zeroed.ok());
  EXPECT_EQ(base->stats.messages_delivered, zeroed->stats.messages_delivered);
  EXPECT_EQ(base->stats.tuples_shipped, zeroed->stats.tuples_shipped);
  EXPECT_EQ(base->stats.control_messages, zeroed->stats.control_messages);
}

}  // namespace
}  // namespace dqsq::dist
