#include "dist/reliable.h"

#include <gtest/gtest.h>

#include "dist/dnaive.h"
#include "dist/dqsq.h"
#include "dist/network.h"
#include "tests/test_util.h"

namespace dqsq::dist {
namespace {

using ::dqsq::testing::AnswerStrings;

Message Basic(SymbolId from, SymbolId to) {
  Message m;
  m.kind = MessageKind::kTuples;
  m.from = from;
  m.to = to;
  return m;
}

TEST(ReliableTransportTest, StampsPerChannelSequenceNumbers) {
  ReliableTransport transport;
  Message a1 = Basic(1, 2), a2 = Basic(1, 2), b1 = Basic(2, 1);
  transport.StampOutgoing(a1, 0);
  transport.StampOutgoing(a2, 0);
  transport.StampOutgoing(b1, 0);
  EXPECT_EQ(a1.seq, 1u);
  EXPECT_EQ(a2.seq, 2u);   // same channel: consecutive
  EXPECT_EQ(b1.seq, 1u);   // reverse channel: independent numbering
  EXPECT_TRUE(transport.HasUnacked());
}

TEST(ReliableTransportTest, DedupSuppressesSecondDelivery) {
  ReliableTransport transport;
  Message m = Basic(1, 2);
  transport.StampOutgoing(m, 0);
  EXPECT_EQ(transport.OnWireDelivery(m, 1),
            ReliableTransport::Disposition::kDeliverFirst);
  EXPECT_EQ(transport.OnWireDelivery(m, 2),
            ReliableTransport::Disposition::kDuplicate);
  EXPECT_TRUE(transport.Seen({1, 2}, 1));
}

TEST(ReliableTransportTest, OutOfOrderDeliveryDedupsAndCatchesUp) {
  ReliableTransport transport;
  Message m1 = Basic(1, 2), m2 = Basic(1, 2), m3 = Basic(1, 2);
  transport.StampOutgoing(m1, 0);
  transport.StampOutgoing(m2, 0);
  transport.StampOutgoing(m3, 0);
  // Delay-reordered wire: 3 arrives first, then 1, then 3 again, then 2.
  EXPECT_EQ(transport.OnWireDelivery(m3, 1),
            ReliableTransport::Disposition::kDeliverFirst);
  EXPECT_EQ(transport.OnWireDelivery(m1, 2),
            ReliableTransport::Disposition::kDeliverFirst);
  EXPECT_EQ(transport.OnWireDelivery(m3, 3),
            ReliableTransport::Disposition::kDuplicate);
  EXPECT_EQ(transport.OnWireDelivery(m2, 4),
            ReliableTransport::Disposition::kDeliverFirst);
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    EXPECT_TRUE(transport.Seen({1, 2}, seq)) << seq;
  }
  EXPECT_TRUE(transport.AllPayloadDelivered());
}

TEST(ReliableTransportTest, RetransmitsAfterTimeoutWithBackoff) {
  ReliableConfig config;
  config.retransmit_timeout = 10;
  config.max_backoff = 4;
  ReliableTransport transport(config);
  Message m = Basic(1, 2);
  transport.StampOutgoing(m, 0);  // due at 10
  EXPECT_TRUE(transport.PollWire(9).empty());
  ASSERT_EQ(transport.NextDue(), std::optional<uint64_t>(10));
  auto first = transport.PollWire(10);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_TRUE(first[0].retransmit);
  EXPECT_EQ(first[0].seq, m.seq);
  // Backoff doubled: next due is 10 + 2*10.
  EXPECT_EQ(transport.NextDue(), std::optional<uint64_t>(30));
  EXPECT_TRUE(transport.PollWire(29).empty());
  EXPECT_EQ(transport.PollWire(30).size(), 1u);
}

TEST(ReliableTransportTest, PiggybackedAckClearsRetransmitQueue) {
  ReliableTransport transport;
  Message data = Basic(1, 2);
  transport.StampOutgoing(data, 0);
  EXPECT_EQ(transport.OnWireDelivery(data, 1),
            ReliableTransport::Disposition::kDeliverFirst);
  // Reverse traffic from 2 to 1 carries the cumulative ack for (1,2).
  Message reply = Basic(2, 1);
  transport.StampOutgoing(reply, 2);
  EXPECT_EQ(reply.ack, 1u);
  EXPECT_EQ(transport.OnWireDelivery(reply, 3),
            ReliableTransport::Disposition::kDeliverFirst);
  // 1's retransmit entry for seq 1 is gone; only 2's reply is unacked
  // (plus the standalone ack 1 owes for it).
  auto due = transport.PollWire(1'000'000);
  size_t retransmits = 0;
  for (const Message& m : due) {
    if (m.retransmit) {
      ++retransmits;
      EXPECT_EQ(m.from, 2u);  // the reply, not the original data message
    } else {
      EXPECT_EQ(m.kind, MessageKind::kTransportAck);
    }
  }
  EXPECT_EQ(retransmits, 1u);
}

TEST(ReliableTransportTest, StandaloneAckFlushesAfterDelayOnSilence) {
  ReliableConfig config;
  config.ack_delay = 4;
  // Push retransmits far out so only the ack is due.
  config.retransmit_timeout = 1000;
  ReliableTransport transport(config);
  Message m = Basic(1, 2);
  transport.StampOutgoing(m, 0);
  EXPECT_EQ(transport.OnWireDelivery(m, 5),
            ReliableTransport::Disposition::kDeliverFirst);
  EXPECT_TRUE(transport.PollWire(8).empty());  // owed since 5, due at 9
  auto acks = transport.PollWire(9);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].kind, MessageKind::kTransportAck);
  EXPECT_EQ(acks[0].from, 2u);
  EXPECT_EQ(acks[0].to, 1u);
  EXPECT_EQ(acks[0].ack, 1u);
  // Delivering the ack empties the sender's queue.
  EXPECT_EQ(transport.OnWireDelivery(acks[0], 10),
            ReliableTransport::Disposition::kControl);
  EXPECT_FALSE(transport.HasUnacked());
  EXPECT_FALSE(transport.NextDue().has_value());
}

// ---------------------------------------------------------------------------
// End-to-end property: under every fault plan, both distributed engines
// return the lossless answers and termination detection stays sound.
// ---------------------------------------------------------------------------

// The paper's Figure 3 distributed program (three peers, mutual recursion
// across all of them).
const char* kFigure3 = R"(
  r@r(X, Y) :- a@r(X, Y).
  r@r(X, Y) :- s@s(X, Z), t@t(Z, Y).
  s@s(X, Y) :- r@r(X, Y), b@s(Y, Z).
  t@t(X, Y) :- c@t(X, Y).
  a@r("1", "2").
  a@r("2", "3").
  a@r("7", "8").
  b@s("2", "5").
  b@s("3", "6").
  c@t("2", "4").
  c@t("3", "9").
)";

struct PlanCase {
  const char* name;
  FaultPlan plan;
};

std::vector<PlanCase> FaultMatrix() {
  std::vector<PlanCase> cases;
  cases.push_back({"lossless", FaultPlan{}});
  FaultPlan drop;
  drop.drop = 0.1;
  cases.push_back({"drop=0.1", drop});
  FaultPlan dup;
  dup.duplicate = 0.1;
  cases.push_back({"dup=0.1", dup});
  FaultPlan delay;
  delay.delay = 0.3;
  delay.max_delay_steps = 12;
  cases.push_back({"delay=0.3", delay});
  FaultPlan all;
  all.drop = 0.1;
  all.duplicate = 0.1;
  all.delay = 0.2;
  cases.push_back({"all-three", all});
  return cases;
}

struct RunOutcome {
  std::vector<std::string> answers;  // rendered while the context is alive
  NetworkStats stats;
  bool quiescent_at_detection = false;
};

StatusOr<RunOutcome> Solve(bool qsq, uint64_t seed, const FaultPlan& plan) {
  DatalogContext ctx;
  auto program = ParseProgram(kFigure3, ctx);
  DQSQ_CHECK_OK(program.status());
  auto query = ParseQuery("r@r(\"1\", Y)", ctx);
  DQSQ_CHECK_OK(query.status());
  DistOptions opts;
  opts.seed = seed;
  opts.faults = plan;
  DQSQ_ASSIGN_OR_RETURN(DistResult result,
                        qsq ? DistQsqSolve(ctx, *program, *query, opts)
                            : DistNaiveSolve(ctx, *program, *query, opts));
  RunOutcome outcome;
  outcome.answers = AnswerStrings(result.answers, ctx);
  outcome.stats = result.net_stats;
  outcome.quiescent_at_detection = result.quiescent_at_detection;
  return outcome;
}

TEST(FaultInjectionPropertyTest, AnswersMatchLosslessAcrossSeedsAndPlans) {
  for (bool qsq : {false, true}) {
    auto lossless = Solve(qsq, /*seed=*/1, FaultPlan{});
    ASSERT_TRUE(lossless.ok()) << lossless.status().ToString();
    const auto expected = lossless->answers;
    ASSERT_FALSE(expected.empty());
    for (const PlanCase& c : FaultMatrix()) {
      for (uint64_t seed = 1; seed <= 20; ++seed) {
        auto result = Solve(qsq, seed, c.plan);
        ASSERT_TRUE(result.ok())
            << (qsq ? "dqsq" : "dnaive") << " plan=" << c.name << " seed="
            << seed << ": " << result.status().ToString();
        EXPECT_EQ(result->answers, expected)
            << (qsq ? "dqsq" : "dnaive") << " plan=" << c.name
            << " seed=" << seed;
        EXPECT_TRUE(result->quiescent_at_detection)
            << c.name << " seed=" << seed;
        if (!c.plan.active()) {
          EXPECT_EQ(result->stats.dropped, 0u);
          EXPECT_EQ(result->stats.retransmits, 0u);
          EXPECT_EQ(result->stats.spurious, 0u);
          EXPECT_EQ(result->stats.transport_acks, 0u);
        }
      }
    }
  }
}

TEST(FaultInjectionPropertyTest, LossyRunsActuallyExerciseTheShim) {
  // Aggregated over seeds, each fault leg fires and the shim repairs it.
  NetworkStats agg;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    FaultPlan all;
    all.drop = 0.1;
    all.duplicate = 0.1;
    all.delay = 0.2;
    auto result = Solve(/*qsq=*/true, seed, all);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    agg.dropped += result->stats.dropped;
    agg.duplicated += result->stats.duplicated;
    agg.delayed += result->stats.delayed;
    agg.retransmits += result->stats.retransmits;
    agg.spurious += result->stats.spurious;
  }
  EXPECT_GT(agg.dropped, 0u);
  EXPECT_GT(agg.duplicated, 0u);
  EXPECT_GT(agg.delayed, 0u);
  EXPECT_GT(agg.retransmits, 0u);  // every drop must be repaired
  EXPECT_GT(agg.spurious, 0u);     // duplicates must be suppressed
}

TEST(FaultInjectionPropertyTest, LosslessPlanLeavesTrafficByteIdentical) {
  // Zero-overhead default: an all-zero plan must not change message or
  // tuple counts relative to a network built without any plan at all.
  auto base = Solve(/*qsq=*/true, /*seed=*/3, FaultPlan{});
  ASSERT_TRUE(base.ok());
  FaultPlan zero;
  zero.max_delay_steps = 32;  // inert while probabilities are 0
  auto zeroed = Solve(/*qsq=*/true, /*seed=*/3, zero);
  ASSERT_TRUE(zeroed.ok());
  EXPECT_EQ(base->stats.messages_delivered, zeroed->stats.messages_delivered);
  EXPECT_EQ(base->stats.tuples_shipped, zeroed->stats.tuples_shipped);
  EXPECT_EQ(base->stats.control_messages, zeroed->stats.control_messages);
}

}  // namespace
}  // namespace dqsq::dist
