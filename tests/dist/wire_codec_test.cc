#include "dist/wire_codec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"

namespace dqsq::dist {
namespace {

// ---- Random message generation -------------------------------------------
// Names are drawn from small pools so cross-context re-interning gets
// exercised (the same name appears under different ids in different
// contexts). Predicate names carry their arity so InternPredicate stays
// consistent within a context.

SymbolId RandomName(Rng& rng, DatalogContext& ctx, const char* prefix) {
  return ctx.symbols().Intern(prefix + std::to_string(rng.NextBelow(6)));
}

TermId RandomTerm(Rng& rng, DatalogContext& ctx, int depth) {
  if (depth <= 0 || rng.NextBool(0.6)) {
    return ctx.arena().MakeConstant(RandomName(rng, ctx, "c"));
  }
  std::vector<TermId> args;
  size_t n = 1 + rng.NextBelow(3);
  for (size_t i = 0; i < n; ++i) {
    args.push_back(RandomTerm(rng, ctx, depth - 1));
  }
  return ctx.arena().MakeApp(RandomName(rng, ctx, "f"), args);
}

RelId RandomRel(Rng& rng, DatalogContext& ctx) {
  uint32_t arity = 1 + static_cast<uint32_t>(rng.NextBelow(3));
  std::string pred =
      "r" + std::to_string(arity) + "_" + std::to_string(rng.NextBelow(4));
  return RelId{ctx.InternPredicate(pred, arity), RandomName(rng, ctx, "p")};
}

Pattern RandomPattern(Rng& rng, DatalogContext& ctx, int depth) {
  switch (depth > 0 ? rng.NextBelow(3) : rng.NextBelow(2)) {
    case 0:
      return Pattern::Var(static_cast<uint32_t>(rng.NextBelow(4)));
    case 1:
      return Pattern::Const(RandomName(rng, ctx, "c"));
    default: {
      std::vector<Pattern> args;
      size_t n = 1 + rng.NextBelow(2);
      for (size_t i = 0; i < n; ++i) {
        args.push_back(RandomPattern(rng, ctx, depth - 1));
      }
      return Pattern::App(RandomName(rng, ctx, "f"), std::move(args));
    }
  }
}

Atom RandomAtom(Rng& rng, DatalogContext& ctx) {
  Atom atom;
  atom.rel = RandomRel(rng, ctx);
  uint32_t arity = ctx.PredicateArity(atom.rel.pred);
  for (uint32_t i = 0; i < arity; ++i) {
    atom.args.push_back(RandomPattern(rng, ctx, 2));
  }
  return atom;
}

Rule RandomRule(Rng& rng, DatalogContext& ctx) {
  Rule rule;
  rule.head = RandomAtom(rng, ctx);
  size_t body = 1 + rng.NextBelow(2);
  for (size_t i = 0; i < body; ++i) rule.body.push_back(RandomAtom(rng, ctx));
  if (rng.NextBool(0.3)) {
    Diseq d;
    d.lhs = RandomPattern(rng, ctx, 1);
    d.rhs = RandomPattern(rng, ctx, 1);
    rule.diseqs.push_back(std::move(d));
  }
  rule.num_vars = 4;
  for (uint32_t i = 0; i < rule.num_vars; ++i) {
    rule.var_names.push_back("V" + std::to_string(i));
  }
  return rule;
}

Message RandomMessage(Rng& rng, DatalogContext& ctx) {
  static const MessageKind kKinds[] = {
      MessageKind::kTuples, MessageKind::kActivate, MessageKind::kSubquery,
      MessageKind::kInstall, MessageKind::kAck};
  Message m;
  m.kind = kKinds[rng.NextBelow(5)];
  m.from = RandomName(rng, ctx, "p");
  m.to = RandomName(rng, ctx, "p");
  if (m.kind == MessageKind::kTuples || m.kind == MessageKind::kActivate ||
      m.kind == MessageKind::kSubquery) {
    m.rel = RandomRel(rng, ctx);
  }
  if (m.kind == MessageKind::kTuples) {
    uint32_t arity = ctx.PredicateArity(m.rel.pred);
    size_t n = rng.NextBelow(4);
    for (size_t i = 0; i < n; ++i) {
      Tuple t;
      for (uint32_t j = 0; j < arity; ++j) {
        t.push_back(RandomTerm(rng, ctx, 2));
      }
      m.tuples.push_back(std::move(t));
    }
  }
  if (m.kind == MessageKind::kActivate) {
    m.subscriber = RandomName(rng, ctx, "p");
  }
  if (m.kind == MessageKind::kSubquery) {
    uint32_t arity = ctx.PredicateArity(m.rel.pred);
    for (uint32_t i = 0; i < arity; ++i) {
      m.adornment.push_back(rng.NextBool(0.5));
    }
  }
  if (m.kind == MessageKind::kInstall) {
    size_t n = 1 + rng.NextBelow(2);
    for (size_t i = 0; i < n; ++i) m.rules.push_back(RandomRule(rng, ctx));
  }
  // Transport envelope.
  m.seq = rng.NextBelow(1000);
  m.ack = rng.NextBelow(1000);
  if (rng.NextBool(0.3)) {
    m.sack.push_back(SackBlock{rng.NextBelow(100), 100 + rng.NextBelow(100)});
  }
  m.retransmit = rng.NextBool(0.2);
  m.epoch = rng.NextBelow(5);
  return m;
}

/// Interns a seed-dependent set of names so the receiving context's id
/// assignment differs from the sender's — the situation the symbolic
/// codec exists for.
void ScrambleInterning(Rng& rng, DatalogContext& ctx) {
  size_t n = rng.NextBelow(20);
  for (size_t i = 0; i < n; ++i) {
    ctx.symbols().Intern("scramble" + std::to_string(rng.NextBelow(50)));
    RandomName(rng, ctx, "c");
    RandomName(rng, ctx, "p");
  }
}

// The round-trip property: decoding into a context with a different
// interning order and re-encoding reproduces the original bytes (the
// encoding is name-based, so it is independent of local ids).
TEST(WireCodecTest, SymbolicRoundTripAcrossContexts20Seeds) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    DatalogContext sender;
    DatalogContext receiver;
    ScrambleInterning(rng, receiver);
    for (int i = 0; i < 10; ++i) {
      Message original = RandomMessage(rng, sender);
      std::string bytes = EncodeWireMessage(original, sender);
      Message decoded = DecodeWireMessage(bytes, receiver);
      EXPECT_EQ(EncodeWireMessage(decoded, receiver), bytes)
          << "seed " << seed << " message " << i;
      // Spot-check the names survived the id translation.
      EXPECT_EQ(receiver.symbols().Name(decoded.from),
                sender.symbols().Name(original.from));
      EXPECT_EQ(receiver.symbols().Name(decoded.to),
                sender.symbols().Name(original.to));
      EXPECT_EQ(decoded.tuples.size(), original.tuples.size());
      EXPECT_EQ(decoded.seq, original.seq);
      EXPECT_EQ(decoded.epoch, original.epoch);
    }
  }
}

TEST(WireCodecTest, TermRoundTripPreservesRendering) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    DatalogContext sender;
    DatalogContext receiver;
    ScrambleInterning(rng, receiver);
    TermId term = RandomTerm(rng, sender, 3);
    SnapshotWriter w;
    EncodeWireTerm(term, sender, w);
    SnapshotReader r(w.bytes());
    TermId decoded = DecodeWireTerm(r, receiver);
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(receiver.arena().ToString(decoded, receiver.symbols()),
              sender.arena().ToString(term, sender.symbols()));
  }
}

// ---- Framing -------------------------------------------------------------

TEST(FrameDecoderTest, ReassemblesArbitraryChunking20Seeds) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    DatalogContext ctx;
    std::vector<std::string> payloads;
    std::string stream;
    size_t n = 1 + rng.NextBelow(8);
    for (size_t i = 0; i < n; ++i) {
      payloads.push_back(EncodeWireMessage(RandomMessage(rng, ctx), ctx));
      stream += EncodeFrame(FrameType::kPeerMessage, payloads.back());
    }
    FrameDecoder decoder;
    std::vector<Frame> frames;
    size_t pos = 0;
    while (pos < stream.size()) {
      size_t chunk = 1 + rng.NextBelow(97);  // tiny, unaligned chunks
      chunk = std::min(chunk, stream.size() - pos);
      decoder.Feed(std::string_view(stream).substr(pos, chunk));
      pos += chunk;
      for (;;) {
        auto next = decoder.Next();
        ASSERT_TRUE(next.ok()) << next.status().ToString();
        if (!next->has_value()) break;
        frames.push_back(std::move(**next));
      }
    }
    ASSERT_EQ(frames.size(), payloads.size()) << "seed " << seed;
    for (size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(frames[i].type, FrameType::kPeerMessage);
      EXPECT_EQ(frames[i].payload, payloads[i]);
    }
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(FrameDecoderTest, TruncatedFrameWaitsForMoreBytes) {
  std::string frame = EncodeFrame(FrameType::kHello, "hello payload");
  FrameDecoder decoder;
  decoder.Feed(std::string_view(frame).substr(0, frame.size() - 1));
  auto next = decoder.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());  // incomplete, not an error
  decoder.Feed(std::string_view(frame).substr(frame.size() - 1));
  next = decoder.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ((*next)->payload, "hello payload");
}

TEST(FrameDecoderTest, GarbagePrefixPoisonsTheStream) {
  FrameDecoder decoder;
  decoder.Feed("this is not a frame header at all");
  auto next = decoder.Next();
  EXPECT_FALSE(next.ok());
  // Poisoned: even after feeding a valid frame the error persists (a byte
  // stream that lost sync cannot be trusted again).
  decoder.Feed(EncodeFrame(FrameType::kHello, "ok"));
  EXPECT_FALSE(decoder.Next().ok());
}

TEST(FrameDecoderTest, ChecksumMismatchIsAnError) {
  std::string frame = EncodeFrame(FrameType::kStart, "some payload bytes");
  frame[frame.size() - 1] ^= 0x5a;  // corrupt the payload, not the header
  FrameDecoder decoder;
  decoder.Feed(frame);
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("checksum"), std::string::npos);
}

TEST(FrameDecoderTest, OversizedLengthIsAnErrorNotAnAllocation) {
  std::string frame = EncodeFrame(FrameType::kHello, "x");
  // Patch the length field (bytes 5..8) to an absurd value.
  for (int i = 5; i < 9; ++i) frame[i] = static_cast<char>(0xff);
  FrameDecoder decoder;
  decoder.Feed(frame);
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("length"), std::string::npos);
}

TEST(FrameDecoderTest, UnknownFrameTypeIsAnError) {
  std::string frame = EncodeFrame(FrameType::kHello, "x");
  frame[4] = static_cast<char>(0x7f);
  FrameDecoder decoder;
  decoder.Feed(frame);
  EXPECT_FALSE(decoder.Next().ok());
}

}  // namespace
}  // namespace dqsq::dist
