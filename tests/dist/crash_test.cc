// Crash-injection harness: peers lose their volatile state mid-run and are
// reconstructed from durable snapshots + write-ahead-log replay under a
// fresh epoch (dist/snapshot.h). The headline property mirrors the fault
// soak of reliable_test.cc: under any (fault plan × crash schedule) pair,
// both distributed engines return the lossless answers and the logical
// traffic counters match the crash-free run exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dist/dnaive.h"
#include "dist/dqsq.h"
#include "dist/network.h"
#include "dist/peer.h"
#include "dist/reliable.h"
#include "dist/snapshot.h"
#include "tests/test_util.h"

namespace dqsq::dist {
namespace {

using ::dqsq::testing::AnswerStrings;

Message Basic(SymbolId from, SymbolId to) {
  Message m;
  m.kind = MessageKind::kTuples;
  m.from = from;
  m.to = to;
  return m;
}

Message Ack(SymbolId from, SymbolId to, uint64_t ack) {
  Message m;
  m.kind = MessageKind::kTransportAck;
  m.from = from;
  m.to = to;
  m.ack = ack;
  return m;
}

// ---------------------------------------------------------------------------
// Epoch protocol (transport level).
// ---------------------------------------------------------------------------

TEST(EpochTest, EpochsStartAtZeroAndAdvancePerRestore) {
  ReliableTransport transport;
  EXPECT_EQ(transport.EpochOf(1), 0u);
  // On a crash-free run every wire emission is stamped with epoch 0 — the
  // wire stays byte-identical to the pre-crash-support transport.
  Message m = Basic(1, 2);
  transport.StampOutgoing(m, 0);
  EXPECT_EQ(m.epoch, 0u);

  PeerSnapshot snap;
  snap.peer = 3;  // no channel state: a fresh peer restarting is legal
  transport.RestorePeer(snap, /*new_epoch=*/2, /*now=*/5);
  EXPECT_EQ(transport.EpochOf(3), 2u);
  Message n = Basic(3, 2);
  transport.StampOutgoing(n, 6);
  EXPECT_EQ(n.epoch, 2u);
}

TEST(EpochTest, StalenessIsJudgedAgainstTheHighestWitnessedEpoch) {
  ReliableTransport transport;
  // Nothing witnessed yet: no message is stale.
  Message m = Basic(1, 2);
  m.seq = 1;
  m.epoch = 2;
  EXPECT_FALSE(transport.IsStale(m));
  // Delivery teaches the channel epoch 2 (a hello would do the same).
  transport.OnWireDelivery(m, 1);
  Message old = Basic(1, 2);
  old.seq = 1;
  old.epoch = 1;
  EXPECT_TRUE(transport.IsStale(old));   // pre-crash incarnation's copy
  Message fresh = Basic(1, 2);
  fresh.seq = 2;
  fresh.epoch = 2;
  EXPECT_FALSE(transport.IsStale(fresh));
  // The reverse channel is independent.
  Message reverse = Basic(2, 1);
  reverse.seq = 1;
  reverse.epoch = 0;
  EXPECT_FALSE(transport.IsStale(reverse));
}

TEST(EpochTest, HellosAnnounceTheNewEpochAndTheResumePoint) {
  ReliableTransport transport;
  // Build channel state for peer 1: it sends to 2 and receives from 3.
  Message out = Basic(1, 2);
  transport.StampOutgoing(out, 0);
  Message in1 = Basic(3, 1), in2 = Basic(3, 1);
  transport.StampOutgoing(in1, 0);
  transport.StampOutgoing(in2, 0);
  transport.OnWireDelivery(in1, 1);
  transport.OnWireDelivery(in2, 2);

  PeerSnapshot snap;
  transport.ExportPeer(1, &snap);
  ReliableTransport restored;
  restored.RestorePeer(snap, /*new_epoch=*/1, /*now=*/10);
  auto hellos = restored.MakeHellos(1, 10);
  ASSERT_EQ(hellos.size(), 2u);  // one per counterpart, ascending
  EXPECT_EQ(hellos[0].kind, MessageKind::kTransportHello);
  EXPECT_EQ(hellos[0].from, 1u);
  EXPECT_EQ(hellos[0].to, 2u);
  EXPECT_EQ(hellos[0].epoch, 1u);
  EXPECT_EQ(hellos[0].seq, 0u);  // unsequenced control traffic
  EXPECT_EQ(hellos[1].to, 3u);
  EXPECT_EQ(hellos[1].ack, 2u);  // resume point of the (3,1) channel
  // A hello is consumed by the transport, never dispatched to a peer.
  ReliableTransport receiver_side;
  EXPECT_EQ(receiver_side.OnWireDelivery(hellos[0], 11),
            ReliableTransport::Disposition::kControl);
}

// ---------------------------------------------------------------------------
// Restart invariants (death tests).
// ---------------------------------------------------------------------------

TEST(CrashRestartDeathTest, RestoringASnapshotFromALaterIncarnationDies) {
  ReliableTransport transport;
  PeerSnapshot snap;
  snap.peer = 1;
  snap.epoch = 5;
  EXPECT_DEATH(transport.RestorePeer(snap, /*new_epoch=*/5, /*now=*/0),
               "epoch regressed");
}

TEST(CrashRestartDeathTest, RestartingIntoAPastEpochDies) {
  ReliableTransport transport;
  PeerSnapshot snap;
  snap.peer = 1;
  snap.epoch = 0;
  transport.RestorePeer(snap, /*new_epoch=*/3, /*now=*/0);
  // new_epoch exceeds the snapshot's epoch but not the peer's current
  // incarnation: the peer would restart into an epoch it already used.
  EXPECT_DEATH(transport.RestorePeer(snap, /*new_epoch=*/2, /*now=*/1),
               "epoch regressed");
}

TEST(CrashRestartDeathTest, DeliveringToACrashedPeerDies) {
  DatalogContext ctx;
  SymbolId id = ctx.InternPeer("p");
  SymbolId other = ctx.InternPeer("q");
  DatalogPeer peer(id, &ctx, EvalOptions{});
  SimNetwork network(/*seed=*/1);
  network.Register(id, &peer);
  peer.Crash();
  Message m = Basic(other, id);
  EXPECT_DEATH((void)peer.OnMessage(m, network), "crashed peer");
}

// ---------------------------------------------------------------------------
// Regression: a restored pending queue must re-stamp its piggybacked acks.
// ---------------------------------------------------------------------------

TEST(CrashRestartTest, RestoredPendingQueueReStampsThePiggybackedAck) {
  // The pending queue stores messages stamped with a sequence number but
  // no ack (the ack is attached at transmission). Before the fix, a
  // restart replayed the stored bytes onto the wire verbatim, so a queue
  // drained after restart advertised the stale cumulative ack frozen at
  // enqueue time — rolling back the receiver's knowledge of the reverse
  // channel. The restored queue must drain through the normal
  // transmit path, which stamps the CURRENT ack, SACK set and epoch.
  ReliableConfig config;
  config.window = 1;
  ReliableTransport original(config);
  // Reverse traffic first: peer 1 has received seq 1 of channel (2,1).
  Message r1 = Basic(2, 1);
  original.StampOutgoing(r1, 0);
  original.OnWireDelivery(r1, 1);
  // Forward traffic: d1 transmits (carrying ack=1), d2 queues unstamped.
  Message d1 = Basic(1, 2), d2 = Basic(1, 2);
  EXPECT_TRUE(original.StampOutgoing(d1, 2));
  EXPECT_EQ(d1.ack, 1u);
  EXPECT_FALSE(original.StampOutgoing(d2, 2));  // window full: pending

  PeerSnapshot snap;
  original.ExportPeer(1, &snap);
  ASSERT_EQ(snap.senders.size(), 1u);
  ASSERT_EQ(snap.senders[0].pending.size(), 1u);
  EXPECT_EQ(snap.senders[0].pending[0].ack, 0u);  // stale stored stamp

  ReliableTransport restored(config);
  restored.RestorePeer(snap, /*new_epoch=*/1, /*now=*/10);
  // The receiver state moved on after the snapshot: seq 2 of (2,1) lands.
  Message r2 = Basic(2, 1);
  r2.seq = 2;
  restored.OnWireDelivery(r2, 11);
  // An ack for d1 opens the window; the pending entry drains.
  restored.OnWireDelivery(Ack(2, 1, 1), 12);
  auto drained = restored.PollWire(13);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].seq, 2u);
  EXPECT_FALSE(drained[0].retransmit);
  EXPECT_EQ(drained[0].ack, 2u)
      << "drained pending entry must carry the current cumulative ack, "
         "not the stamp frozen at enqueue time";
  EXPECT_EQ(drained[0].epoch, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end property: under every (fault plan × crash schedule) pair both
// engines return the lossless answers and the logical traffic matches.
// ---------------------------------------------------------------------------

// The paper's Figure 3 distributed program (three peers, mutual recursion
// across all of them) — same workload as the fault-injection soak.
const char* kFigure3 = R"(
  r@r(X, Y) :- a@r(X, Y).
  r@r(X, Y) :- s@s(X, Z), t@t(Z, Y).
  s@s(X, Y) :- r@r(X, Y), b@s(Y, Z).
  t@t(X, Y) :- c@t(X, Y).
  a@r("1", "2").
  a@r("2", "3").
  a@r("7", "8").
  b@s("2", "5").
  b@s("3", "6").
  c@t("2", "4").
  c@t("3", "9").
)";

struct PlanCase {
  const char* name;
  FaultPlan plan;
};

std::vector<PlanCase> FaultMatrix() {
  std::vector<PlanCase> cases;
  cases.push_back({"lossless", FaultPlan{}});
  FaultPlan drop;
  drop.drop = 0.1;
  cases.push_back({"drop=0.1", drop});
  FaultPlan dup;
  dup.duplicate = 0.1;
  cases.push_back({"dup=0.1", dup});
  FaultPlan delay;
  delay.delay = 0.3;
  delay.max_delay_steps = 12;
  cases.push_back({"delay=0.3", delay});
  FaultPlan all;
  all.drop = 0.1;
  all.duplicate = 0.1;
  all.delay = 0.2;
  cases.push_back({"all-three", all});
  return cases;
}

struct CrashCase {
  const char* name;
  CrashPlan crash;
};

std::vector<CrashCase> CrashMatrix() {
  std::vector<CrashCase> cases;
  CrashPlan single;
  single.crash_at_step = {{/*at_step=*/25, /*peer_index=*/0}};
  single.down_for = 16;
  single.checkpoint_every = 1;
  cases.push_back({"single@25", single});
  CrashPlan two;
  two.crash_at_step = {{/*at_step=*/20, /*peer_index=*/1},
                       {/*at_step=*/60, /*peer_index=*/0}};
  two.down_for = 24;
  two.checkpoint_every = 4;  // WAL replay covers up to 3 deliveries
  cases.push_back({"two@20,60", two});
  CrashPlan random;
  random.random_crash = 0.02;
  random.max_random_crashes = 2;
  random.down_for = 16;
  random.checkpoint_every = 2;
  cases.push_back({"random=0.02", random});
  return cases;
}

struct RunOutcome {
  std::vector<std::string> answers;  // rendered while the context is alive
  NetworkStats stats;
  bool quiescent_at_detection = false;
};

StatusOr<RunOutcome> Solve(bool qsq, uint64_t seed, const FaultPlan& plan) {
  DatalogContext ctx;
  auto program = ParseProgram(kFigure3, ctx);
  DQSQ_CHECK_OK(program.status());
  auto query = ParseQuery("r@r(\"1\", Y)", ctx);
  DQSQ_CHECK_OK(query.status());
  DistOptions opts;
  opts.seed = seed;
  opts.faults = plan;
  DQSQ_ASSIGN_OR_RETURN(DistResult result,
                        qsq ? DistQsqSolve(ctx, *program, *query, opts)
                            : DistNaiveSolve(ctx, *program, *query, opts));
  RunOutcome outcome;
  outcome.answers = AnswerStrings(result.answers, ctx);
  outcome.stats = result.net_stats;
  outcome.quiescent_at_detection = result.quiescent_at_detection;
  return outcome;
}

TEST(CrashInjectionPropertyTest, SingleCrashRecoversAndMatchesLossless) {
  for (bool qsq : {false, true}) {
    auto lossless = Solve(qsq, /*seed=*/1, FaultPlan{});
    ASSERT_TRUE(lossless.ok()) << lossless.status().ToString();
    FaultPlan plan;
    plan.crash.crash_at_step = {{/*at_step=*/10, /*peer_index=*/0}};
    plan.crash.down_for = 16;
    auto result = Solve(qsq, /*seed=*/1, plan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->answers, lossless->answers);
    EXPECT_TRUE(result->quiescent_at_detection);
    EXPECT_EQ(result->stats.crashes, 1u) << (qsq ? "dqsq" : "dnaive");
    EXPECT_EQ(result->stats.restarts, 1u);
    EXPECT_GT(result->stats.snapshot_bytes, 0u);
    EXPECT_GT(result->stats.wal_records, 0u);
    // Logical traffic is crash-invariant: every payload dropped at the
    // down peer is repaired by the transport and counted exactly once.
    EXPECT_EQ(result->stats.messages_delivered,
              lossless->stats.messages_delivered);
    EXPECT_EQ(result->stats.tuples_shipped, lossless->stats.tuples_shipped);
  }
}

TEST(CrashInjectionPropertyTest, AnswersMatchAcrossSeedsPlansAndSchedules) {
  // The tentpole soak: 20 seeds × 5 fault plans × 3 crash schedules, both
  // engines. Diagnosis answers and the logical message counters must be
  // indistinguishable from the crash-free lossless run, and termination
  // detection must stay sound (no hang, no ack underflow).
  for (bool qsq : {false, true}) {
    auto lossless = Solve(qsq, /*seed=*/1, FaultPlan{});
    ASSERT_TRUE(lossless.ok()) << lossless.status().ToString();
    const auto expected = lossless->answers;
    ASSERT_FALSE(expected.empty());
    NetworkStats agg;
    for (const PlanCase& p : FaultMatrix()) {
      for (const CrashCase& c : CrashMatrix()) {
        for (uint64_t seed = 1; seed <= 20; ++seed) {
          FaultPlan plan = p.plan;
          plan.crash = c.crash;
          auto result = Solve(qsq, seed, plan);
          ASSERT_TRUE(result.ok())
              << (qsq ? "dqsq" : "dnaive") << " plan=" << p.name
              << " crash=" << c.name << " seed=" << seed << ": "
              << result.status().ToString();
          EXPECT_EQ(result->answers, expected)
              << (qsq ? "dqsq" : "dnaive") << " plan=" << p.name
              << " crash=" << c.name << " seed=" << seed;
          EXPECT_TRUE(result->quiescent_at_detection)
              << p.name << "/" << c.name << " seed=" << seed;
          EXPECT_EQ(result->stats.messages_delivered,
                    lossless->stats.messages_delivered)
              << p.name << "/" << c.name << " seed=" << seed;
          EXPECT_EQ(result->stats.tuples_shipped,
                    lossless->stats.tuples_shipped)
              << p.name << "/" << c.name << " seed=" << seed;
          EXPECT_EQ(result->stats.restarts, result->stats.crashes);
          agg.crashes += result->stats.crashes;
          agg.restarts += result->stats.restarts;
          agg.crash_drops += result->stats.crash_drops;
          agg.stale_epoch_drops += result->stats.stale_epoch_drops;
          agg.snapshot_bytes += result->stats.snapshot_bytes;
          agg.wal_records += result->stats.wal_records;
        }
      }
    }
    // The schedule machinery must actually fire across the soak.
    EXPECT_GT(agg.crashes, 0u) << (qsq ? "dqsq" : "dnaive");
    EXPECT_EQ(agg.restarts, agg.crashes);
    EXPECT_GT(agg.crash_drops, 0u);  // some wire traffic hit a down peer
    EXPECT_GT(agg.snapshot_bytes, 0u);
    EXPECT_GT(agg.wal_records, 0u);
  }
}

TEST(CrashInjectionPropertyTest, InactiveCrashPlanIsZeroOverhead) {
  // Tuning fields alone (down_for, checkpoint_every) schedule nothing: the
  // run must be indistinguishable from a plain lossless run — no durable
  // writes, no transport engagement, identical traffic.
  auto base = Solve(/*qsq=*/true, /*seed=*/3, FaultPlan{});
  ASSERT_TRUE(base.ok());
  FaultPlan inert;
  inert.crash.down_for = 7;
  inert.crash.checkpoint_every = 3;
  ASSERT_FALSE(inert.active());
  auto inert_run = Solve(/*qsq=*/true, /*seed=*/3, inert);
  ASSERT_TRUE(inert_run.ok());
  EXPECT_EQ(inert_run->answers, base->answers);
  EXPECT_EQ(inert_run->stats.messages_delivered,
            base->stats.messages_delivered);
  EXPECT_EQ(inert_run->stats.tuples_shipped, base->stats.tuples_shipped);
  EXPECT_EQ(inert_run->stats.wire_messages, base->stats.wire_messages);
  EXPECT_EQ(inert_run->stats.crashes, 0u);
  EXPECT_EQ(inert_run->stats.snapshot_bytes, 0u);
  EXPECT_EQ(inert_run->stats.wal_records, 0u);
}

}  // namespace
}  // namespace dqsq::dist
