#include "dist/global.h"

#include <gtest/gtest.h>

#include "datalog/engine.h"
#include "tests/test_util.h"

namespace dqsq::dist {
namespace {

TEST(GlobalProgramTest, AppendsPeerColumn) {
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    r@r(X, Y) :- s@s(X, Z), t@t(Z, Y).
  )",
                              ctx);
  ASSERT_TRUE(program.ok());
  auto global = GlobalProgram(*program, ctx);
  ASSERT_TRUE(global.ok());
  ASSERT_EQ(global->rules.size(), 1u);
  const Rule& rule = global->rules[0];
  // r_g has arity 3 and lives at the local peer.
  EXPECT_EQ(ctx.PredicateName(rule.head.rel.pred), "r_g");
  EXPECT_EQ(ctx.PredicateArity(rule.head.rel.pred), 3u);
  EXPECT_EQ(rule.head.rel.peer, ctx.local_peer());
  // The extra argument is the peer-name constant.
  EXPECT_EQ(RuleToString(rule, ctx),
            "r_g(X,Y,r) :- s_g(X,Z,s), t_g(Z,Y,t).");
}

TEST(GlobalProgramTest, FactsTranslate) {
  DatalogContext ctx;
  auto program = ParseProgram("a@paris(x, y).", ctx);
  ASSERT_TRUE(program.ok());
  auto global = GlobalProgram(*program, ctx);
  ASSERT_TRUE(global.ok());
  EXPECT_EQ(RuleToString(global->rules[0], ctx), "a_g(x,y,paris).");
}

TEST(GlobalProgramTest, QueryTranslates) {
  DatalogContext ctx;
  auto q = ParseQuery("r@r(\"1\", Y)", ctx);
  ASSERT_TRUE(q.ok());
  auto gq = GlobalQuery(*q, ctx);
  ASSERT_TRUE(gq.ok());
  EXPECT_EQ(gq->atom.args.size(), 3u);
  EXPECT_EQ(gq->num_vars, 1u);
}

TEST(GlobalProgramTest, SamePredicateDifferentPeersDisambiguated) {
  // stock@paris and stock@rome map to one stock_g with the peer column
  // separating them — the paper's canonical semantics.
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    stock@paris(wine).
    stock@rome(pasta).
    menu@paris(X) :- stock@paris(X).
  )",
                              ctx);
  ASSERT_TRUE(program.ok());
  auto global = GlobalProgram(*program, ctx);
  ASSERT_TRUE(global.ok());
  auto gq = ParseQuery("menu_g(X, paris)", ctx);
  ASSERT_TRUE(gq.ok());
  Database db(&ctx);
  auto result = SolveQuery(*global, db, *gq, Strategy::kSemiNaive);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(testing::AnswerStrings(result->answers, ctx),
            (std::vector<std::string>{"wine"}));
}

TEST(GlobalProgramTest, DiseqsPreserved) {
  DatalogContext ctx;
  auto program = ParseProgram(
      "p@a(X, Y) :- q@a(X), q@b(Y), X != Y.", ctx);
  ASSERT_TRUE(program.ok());
  auto global = GlobalProgram(*program, ctx);
  ASSERT_TRUE(global.ok());
  EXPECT_EQ(global->rules[0].diseqs.size(), 1u);
}

}  // namespace
}  // namespace dqsq::dist
