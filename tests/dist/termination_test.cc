#include "dist/termination.h"

#include <gtest/gtest.h>

namespace dqsq::dist {
namespace {

TEST(DsNodeTest, EngagementLifecycle) {
  DsNode node(/*is_root=*/false);
  EXPECT_FALSE(node.engaged());
  // First basic message engages, ack deferred.
  EXPECT_FALSE(node.OnReceiveBasic(7));
  EXPECT_TRUE(node.engaged());
  EXPECT_EQ(node.parent(), 7u);
  // Later messages are acked immediately.
  EXPECT_TRUE(node.OnReceiveBasic(9));
  // With deficit, cannot disengage.
  node.OnSendBasic();
  EXPECT_FALSE(node.TryDisengage());
  node.OnReceiveAck();
  EXPECT_TRUE(node.TryDisengage());
  EXPECT_FALSE(node.engaged());
}

TEST(DsNodeTest, DuplicateBasicDeliveryBreaksDeficitAccounting) {
  // Why the reliable shim must deduplicate BEFORE the DsNode sees a
  // message: an engaged node acks every delivered basic message, so a
  // transport-level duplicate produces a second ack for a single send and
  // the sender's deficit underflows. Acks must count first deliveries only.
  DsNode sender(/*is_root=*/true);
  DsNode receiver(/*is_root=*/false);
  sender.OnSendBasic();  // one logical message, deficit 1
  EXPECT_FALSE(receiver.OnReceiveBasic(1));  // first delivery: engages
  ASSERT_TRUE(receiver.TryDisengage());      // deferred ack released
  sender.OnReceiveAck();
  EXPECT_EQ(sender.deficit(), 0u);
  // The wire duplicates the same basic message. A fresh (disengaged)
  // receiver re-engages; an engaged one would ack immediately — either way
  // a second ack is produced for a message that was sent once.
  EXPECT_FALSE(receiver.OnReceiveBasic(1));
  ASSERT_TRUE(receiver.TryDisengage());
  EXPECT_DEATH(sender.OnReceiveAck(), "deficit_");
}

TEST(DsNodeTest, EngagedNodeAcksDuplicateImmediately) {
  // The other duplicate interleaving: the receiver is still engaged when
  // the copy arrives, so OnReceiveBasic requests an immediate ack — again
  // one ack too many unless the transport dedups first.
  DsNode receiver(/*is_root=*/false);
  EXPECT_FALSE(receiver.OnReceiveBasic(4));  // original engages
  EXPECT_TRUE(receiver.OnReceiveBasic(4));   // duplicate: immediate ack
  EXPECT_EQ(receiver.parent(), 4u);
}

TEST(DsNodeTest, RootStartsEngaged) {
  DsNode root(/*is_root=*/true);
  EXPECT_TRUE(root.engaged());
  EXPECT_TRUE(root.TryDisengage());  // no work sent: immediate detection
}

TEST(DijkstraScholtenTest, DetectsTerminationExactlyAtQuiescence) {
  // Across many random executions, the root must always detect
  // termination, and at that instant the network must be quiescent (the
  // safety property of the algorithm).
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    auto result = RunDiffusingComputation(/*num_nodes=*/5,
                                          /*total_work=*/40,
                                          /*max_fanout=*/3, seed);
    ASSERT_TRUE(result.ok()) << "seed " << seed;
    EXPECT_TRUE(result->detected) << "seed " << seed;
    EXPECT_TRUE(result->quiescent_at_detection) << "seed " << seed;
    // Every basic message is eventually acknowledged.
    EXPECT_EQ(result->ack_messages, result->basic_messages)
        << "seed " << seed;
  }
}

TEST(DijkstraScholtenTest, SingleNodeTerminatesImmediately) {
  auto result = RunDiffusingComputation(1, 10, 2, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->detected);
  EXPECT_TRUE(result->quiescent_at_detection);
}

TEST(DijkstraScholtenTest, LargeFanOut) {
  auto result = RunDiffusingComputation(12, 500, 4, 11);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->detected);
  EXPECT_TRUE(result->quiescent_at_detection);
  EXPECT_GT(result->work_items, 100u);
}

TEST(DijkstraScholtenTest, ZeroNodesRejected) {
  auto result = RunDiffusingComputation(0, 1, 1, 1);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace dqsq::dist
