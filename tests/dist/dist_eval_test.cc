#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "datalog/engine.h"
#include "dist/dnaive.h"
#include "dist/dqsq.h"
#include "dist/global.h"
#include "tests/test_util.h"

namespace dqsq::dist {
namespace {

using ::dqsq::testing::AnswerStrings;

// The paper's Figure 3 distributed program.
const char* kFigure3 = R"(
  r@r(X, Y) :- a@r(X, Y).
  r@r(X, Y) :- s@s(X, Z), t@t(Z, Y).
  s@s(X, Y) :- r@r(X, Y), b@s(Y, Z).
  t@t(X, Y) :- c@t(X, Y).
  a@r("1", "2").
  a@r("2", "3").
  a@r("7", "8").
  b@s("2", "5").
  b@s("3", "6").
  c@t("2", "4").
  c@t("3", "9").
)";

struct Parsed {
  Program program;
  ParsedQuery query;
};

Parsed ParseAll(DatalogContext& ctx, const std::string& program_text,
                const std::string& query_text) {
  auto program = ParseProgram(program_text, ctx);
  DQSQ_CHECK_OK(program.status());
  auto query = ParseQuery(query_text, ctx);
  DQSQ_CHECK_OK(query.status());
  return Parsed{*std::move(program), *std::move(query)};
}

TEST(DistNaiveTest, Figure3MatchesCentralized) {
  DatalogContext ctx;
  Parsed p = ParseAll(ctx, kFigure3, "r@r(\"1\", Y)");

  Database db(&ctx);
  auto central = SolveQuery(p.program, db, p.query, Strategy::kSemiNaive);
  ASSERT_TRUE(central.ok());

  auto dist = DistNaiveSolve(ctx, p.program, p.query, DistOptions{});
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  EXPECT_EQ(AnswerStrings(dist->answers, ctx),
            AnswerStrings(central->answers, ctx));
  EXPECT_EQ(AnswerStrings(dist->answers, ctx),
            (std::vector<std::string>{"2", "4"}));
  EXPECT_EQ(dist->num_peers, 3u);
  EXPECT_GT(dist->net_stats.messages_delivered, 0u);
}

TEST(DistQsqTest, Figure3MatchesCentralizedQsq) {
  // Theorem 1: dQSQ computes the same facts as QSQ and the same answers.
  DatalogContext ctx;
  Parsed p = ParseAll(ctx, kFigure3, "r@r(\"1\", Y)");

  Database db(&ctx);
  auto central = SolveQuery(p.program, db, p.query, Strategy::kQsq);
  ASSERT_TRUE(central.ok());

  auto dist = DistQsqSolve(ctx, p.program, p.query, DistOptions{});
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  EXPECT_EQ(AnswerStrings(dist->answers, ctx),
            AnswerStrings(central->answers, ctx));
  EXPECT_EQ(AnswerStrings(dist->answers, ctx),
            (std::vector<std::string>{"2", "4"}));
}

TEST(DistQsqTest, Theorem1AdornedRelationsMatchCentralized) {
  // Theorem 1's bijection on adorned relations: the union over peers of
  // each adorned answer relation equals the centralized one.
  DatalogContext ctx_c;
  Parsed pc = ParseAll(ctx_c, kFigure3, "r@r(\"1\", Y)");
  Database db(&ctx_c);
  auto central = SolveQuery(pc.program, db, pc.query, Strategy::kQsq);
  ASSERT_TRUE(central.ok());

  DatalogContext ctx_d;
  Parsed pd = ParseAll(ctx_d, kFigure3, "r@r(\"1\", Y)");
  auto dist = DistQsqSolve(ctx_d, pd.program, pd.query, DistOptions{});
  ASSERT_TRUE(dist.ok());

  // Centralized adorned answers of the intensional relations. (The
  // centralized engine also adorns the fact-defined relations a/b/c —
  // facts are rules to it — while peers load them extensionally and join
  // directly; Theorem 1's bijection concerns the intensional relations.)
  size_t central_ans = 0;
  for (const char* rel : {"r__bf", "s__bf", "t__bf"}) {
    central_ans += CountRelationFacts(db, rel);
  }
  EXPECT_EQ(dist->answer_facts, central_ans);
}

TEST(DistTest, SeedsDoNotChangeResults) {
  // Arbitrary asynchrony must not affect the fixpoint (confluence of the
  // naive distributed evaluation, §3.1).
  std::vector<std::string> naive_expected, qsq_expected;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    DatalogContext ctx;
    Parsed p = ParseAll(ctx, kFigure3, "r@r(\"1\", Y)");
    DistOptions opts;
    opts.seed = seed;
    auto naive = DistNaiveSolve(ctx, p.program, p.query, opts);
    ASSERT_TRUE(naive.ok());
    auto qsq = DistQsqSolve(ctx, p.program, p.query, opts);
    ASSERT_TRUE(qsq.ok());
    auto ns = AnswerStrings(naive->answers, ctx);
    auto qs = AnswerStrings(qsq->answers, ctx);
    if (seed == 1) {
      naive_expected = ns;
      qsq_expected = qs;
    } else {
      EXPECT_EQ(ns, naive_expected) << "seed " << seed;
      EXPECT_EQ(qs, qsq_expected) << "seed " << seed;
    }
  }
}

TEST(DistQsqTest, MaterializesLessThanDistNaive) {
  // A distributed chain: peers p0..p3 each own a segment; the query binds
  // the start, so dQSQ only walks the demanded suffix.
  std::string program;
  const int kPeers = 4, kPerPeer = 8;
  for (int p = 0; p < kPeers; ++p) {
    for (int i = 0; i < kPerPeer; ++i) {
      int from = p * kPerPeer + i;
      int to = from + 1;
      program += "edge@peer" + std::to_string(p) + "(v" +
                 std::to_string(from) + ", v" + std::to_string(to) + ").\n";
    }
  }
  // path@peerP(X,Y) walks edges within the peer and hops to the next.
  for (int p = 0; p < kPeers; ++p) {
    std::string self = "peer" + std::to_string(p);
    program += "path@" + self + "(X, Y) :- edge@" + self + "(X, Y).\n";
    program += "path@" + self + "(X, Y) :- edge@" + self +
               "(X, Z), path@" + self + "(Z, Y).\n";
    if (p + 1 < kPeers) {
      std::string next = "peer" + std::to_string(p + 1);
      program += "path@" + self + "(X, Y) :- edge@" + self + "(X, Z), path@" +
                 next + "(Z, Y).\n";
      // Hop rule: the last edge of this peer continues at the next peer.
    }
  }
  DatalogContext ctx1;
  Parsed p1 = ParseAll(ctx1, program, "path@peer2(v20, Y)");
  auto naive = DistNaiveSolve(ctx1, p1.program, p1.query, DistOptions{});
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();

  DatalogContext ctx2;
  Parsed p2 = ParseAll(ctx2, program, "path@peer2(v20, Y)");
  auto qsq = DistQsqSolve(ctx2, p2.program, p2.query, DistOptions{});
  ASSERT_TRUE(qsq.ok()) << qsq.status().ToString();

  EXPECT_EQ(AnswerStrings(naive->answers, ctx1),
            AnswerStrings(qsq->answers, ctx2));
  EXPECT_FALSE(qsq->answers.empty());
  // Naive materializes every path fact of the activated sub-program; QSQ
  // only those reachable from v20.
  EXPECT_LT(qsq->answer_facts, naive->answer_facts);
  EXPECT_LT(qsq->net_stats.tuples_shipped, naive->net_stats.tuples_shipped);
}

TEST(DistMetricsTest, DqsqShipsFewerTuplesThanDistNaiveOnE3Chain) {
  // The E3 bench workload: a chain over 4 peers, demand bound at peer0 so
  // it spans every peer. Scope the process-wide registry to each run with
  // snapshot diffs, check the registry agrees with the per-run
  // NetworkStats view, and assert the paper's communication claim on the
  // tuple-shipping counter. (Total message counts are NOT lower for dQSQ:
  // subquery/install control traffic plus Dijkstra-Scholten acks outweigh
  // the saved data messages at this scale; the claim is about tuples.)
  const std::string program = bench::DistributedChainProgram(4, 16);
  const std::string query = "path@peer0(v0, Y)";
  auto& registry = MetricsRegistry::Global();

  DatalogContext ctx1;
  Parsed p1 = ParseAll(ctx1, program, query);
  MetricsSnapshot before_naive = registry.Snapshot();
  auto naive = DistNaiveSolve(ctx1, p1.program, p1.query, DistOptions{});
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  MetricsSnapshot naive_diff = registry.Snapshot().Diff(before_naive);

  DatalogContext ctx2;
  Parsed p2 = ParseAll(ctx2, program, query);
  MetricsSnapshot before_qsq = registry.Snapshot();
  auto qsq = DistQsqSolve(ctx2, p2.program, p2.query, DistOptions{});
  ASSERT_TRUE(qsq.ok()) << qsq.status().ToString();
  MetricsSnapshot qsq_diff = registry.Snapshot().Diff(before_qsq);

  EXPECT_EQ(AnswerStrings(naive->answers, ctx1),
            AnswerStrings(qsq->answers, ctx2));

  // The registry's counters are the NetworkStats numbers.
  EXPECT_EQ(naive_diff.Value("dist.net.tuples_shipped"),
            naive->net_stats.tuples_shipped);
  EXPECT_EQ(qsq_diff.Value("dist.net.tuples_shipped"),
            qsq->net_stats.tuples_shipped);
  EXPECT_EQ(naive_diff.Total("dist.net.messages_delivered"),
            naive->net_stats.messages_delivered);
  EXPECT_EQ(qsq_diff.Total("dist.net.messages_delivered"),
            qsq->net_stats.messages_delivered);
  EXPECT_EQ(naive_diff.Total("dist.net.channel_messages"),
            naive->net_stats.messages_delivered);

  // dQSQ ships strictly fewer tuples than distributed naive.
  EXPECT_LT(qsq_diff.Value("dist.net.tuples_shipped"),
            naive_diff.Value("dist.net.tuples_shipped"));

  // Per-engine accounting fired exactly once per run.
  EXPECT_EQ(naive_diff.Value("dist.solve.queries", {{"engine", "dnaive"}}),
            1u);
  EXPECT_EQ(qsq_diff.Value("dist.solve.queries", {{"engine", "dqsq"}}), 1u);
  // One subquery message per peer along the demand chain (at least).
  EXPECT_GE(qsq_diff.Total("dist.peer.subqueries_received"), 4u);
}

TEST(DistTest, GlobalProgramSemanticsMatch) {
  // The distributed result equals evaluating P^g centrally (the paper's
  // definition of dDatalog semantics).
  DatalogContext ctx;
  Parsed p = ParseAll(ctx, kFigure3, "r@r(\"1\", Y)");
  auto global = GlobalProgram(p.program, ctx);
  ASSERT_TRUE(global.ok());
  auto gquery = GlobalQuery(p.query, ctx);
  ASSERT_TRUE(gquery.ok());
  Database db(&ctx);
  auto central = SolveQuery(*global, db, *gquery, Strategy::kSemiNaive);
  ASSERT_TRUE(central.ok());

  auto dist = DistNaiveSolve(ctx, p.program, p.query, DistOptions{});
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(AnswerStrings(dist->answers, ctx),
            AnswerStrings(central->answers, ctx));
}

TEST(DistTest, FunctionSymbolsAcrossPeers) {
  DatalogContext ctx;
  Parsed p = ParseAll(ctx, R"(
    base@a(c1).
    wrap@b(f(X)) :- base@a(X).
    deep@c(g(Y)) :- wrap@b(Y).
  )",
                      "deep@c(W)");
  auto naive = DistNaiveSolve(ctx, p.program, p.query, DistOptions{});
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(AnswerStrings(naive->answers, ctx),
            (std::vector<std::string>{"g(f(c1))"}));

  DatalogContext ctx2;
  Parsed p2 = ParseAll(ctx2, R"(
    base@a(c1).
    wrap@b(f(X)) :- base@a(X).
    deep@c(g(Y)) :- wrap@b(Y).
  )",
                       "deep@c(W)");
  auto qsq = DistQsqSolve(ctx2, p2.program, p2.query, DistOptions{});
  ASSERT_TRUE(qsq.ok()) << qsq.status().ToString();
  EXPECT_EQ(AnswerStrings(qsq->answers, ctx2),
            (std::vector<std::string>{"g(f(c1))"}));
}

TEST(DistTest, DisequalitiesAcrossPeers) {
  const char* program = R"(
    node@a(x). node@a(y).
    other@b(x). other@b(y).
    pair@a(X, Y) :- node@a(X), other@b(Y), X != Y.
  )";
  DatalogContext ctx;
  Parsed p = ParseAll(ctx, program, "pair@a(U, V)");
  auto naive = DistNaiveSolve(ctx, p.program, p.query, DistOptions{});
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(AnswerStrings(naive->answers, ctx),
            (std::vector<std::string>{"x,y", "y,x"}));

  DatalogContext ctx2;
  Parsed p2 = ParseAll(ctx2, program, "pair@a(U, V)");
  auto qsq = DistQsqSolve(ctx2, p2.program, p2.query, DistOptions{});
  ASSERT_TRUE(qsq.ok()) << qsq.status().ToString();
  EXPECT_EQ(AnswerStrings(qsq->answers, ctx2),
            (std::vector<std::string>{"x,y", "y,x"}));
}

TEST(DistTest, DijkstraScholtenDrivesTermination) {
  // The drivers stop when the root's DS detection fires;
  // RunUntilTermination verifies quiescence at that instant and fails
  // otherwise — so a passing run IS the safety check. Message counts
  // include the acknowledgments (>= one per basic message).
  DatalogContext ctx;
  Parsed p = ParseAll(ctx, kFigure3, "r@r(\"1\", Y)");
  auto dist = DistQsqSolve(ctx, p.program, p.query, DistOptions{});
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  // Basic messages (tuples + control minus acks) are each acked once.
  size_t basic = dist->net_stats.messages_delivered / 2;
  EXPECT_GE(dist->net_stats.messages_delivered, 2 * basic);
  EXPECT_GT(basic, 0u);
}

}  // namespace
}  // namespace dqsq::dist
