#include "datalog/adornment.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace dqsq {
namespace {

TEST(AdornmentTest, SuffixNotation) {
  EXPECT_EQ(AdornmentSuffix({true, false}), "bf");
  EXPECT_EQ(AdornmentSuffix({false, false, true}), "ffb");
  EXPECT_EQ(AdornmentSuffix({}), "");
}

TEST(AdornmentTest, QueryAdornmentFromGroundPositions) {
  DatalogContext ctx;
  auto q = ParseQuery("r(\"1\", Y)", ctx);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(QueryAdornment(q->atom), (Adornment{true, false}));
  auto q2 = ParseQuery("r(X, Y)", ctx);
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(QueryAdornment(q2->atom), (Adornment{false, false}));
}

TEST(AdornmentTest, FunctionArgBoundOnlyWhenAllVarsBound) {
  DatalogContext ctx;
  auto program = ParseProgram("p(f(X, Y), X) :- q(X), r(Y).", ctx);
  ASSERT_TRUE(program.ok());
  const Atom& head = program->rules[0].head;
  // Only X bound: f(X, Y) stays free, second arg bound.
  std::vector<bool> bound_vars(2, false);
  bound_vars[0] = true;  // X is slot 0 (first occurrence)
  Adornment a = AdornAtom(head, bound_vars);
  EXPECT_EQ(a, (Adornment{false, true}));
  bound_vars[1] = true;
  EXPECT_EQ(AdornAtom(head, bound_vars), (Adornment{true, true}));
}

TEST(AdornmentTest, PaperFigure3CallPatterns) {
  DatalogContext ctx;
  // Figure 3 program; query r@r("1", Y) — the paper's running Datalog
  // example. Expected reachable call patterns (Figure 4): r^bf, s^bf, t^bf.
  auto program = ParseProgram(R"(
    r@r(X, Y) :- a@r(X, Y).
    r@r(X, Y) :- s@s(X, Z), t@t(Z, Y).
    s@s(X, Y) :- r@r(X, Y), b@s(Y, Z).
    t@t(X, Y) :- c@t(X, Y).
  )",
                              ctx);
  ASSERT_TRUE(program.ok());
  auto q = ParseQuery("r@r(\"1\", Y)", ctx);
  ASSERT_TRUE(q.ok());
  auto adorned = AdornProgram(*program, q->atom.rel, QueryAdornment(q->atom));
  ASSERT_TRUE(adorned.ok()) << adorned.status().ToString();

  std::vector<std::string> patterns;
  for (const auto& [rel, a] : adorned->call_patterns) {
    patterns.push_back(ctx.PredicateName(rel.pred) + "^" +
                       AdornmentSuffix(a));
  }
  std::sort(patterns.begin(), patterns.end());
  EXPECT_EQ(patterns,
            (std::vector<std::string>{"r^bf", "s^bf", "t^bf"}));
  // Each of the four rules is adorned exactly once.
  EXPECT_EQ(adorned->rules.size(), 4u);
}

TEST(AdornmentTest, DistinctAdornmentsOfOneRelation) {
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
    q(Y) :- sg(k, Y), sg(Y, m).
  )",
                              ctx);
  ASSERT_TRUE(program.ok());
  auto q = ParseQuery("q(Y)", ctx);
  ASSERT_TRUE(q.ok());
  auto adorned = AdornProgram(*program, q->atom.rel, QueryAdornment(q->atom));
  ASSERT_TRUE(adorned.ok());
  // sg is called as sg^bf (from q and recursively) and sg^bb — wait: the
  // second call sg(Y, m) has Y bound (by the first) and m constant: sg^bb.
  std::vector<std::string> patterns;
  for (const auto& [rel, a] : adorned->call_patterns) {
    patterns.push_back(ctx.PredicateName(rel.pred) + "^" +
                       AdornmentSuffix(a));
  }
  std::sort(patterns.begin(), patterns.end());
  EXPECT_EQ(patterns,
            (std::vector<std::string>{"q^f", "sg^bb", "sg^bf"}));
}

TEST(AdornmentTest, ExtensionalQueryIsRejected) {
  DatalogContext ctx;
  auto program = ParseProgram("p(X) :- base(X).", ctx);
  ASSERT_TRUE(program.ok());
  PredicateId base;
  ASSERT_TRUE(ctx.LookupPredicate("base", &base));
  auto adorned = AdornProgram(*program, RelId{base, ctx.local_peer()},
                              Adornment{true});
  EXPECT_FALSE(adorned.ok());
}

}  // namespace
}  // namespace dqsq
