#include "datalog/term.h"

#include <gtest/gtest.h>

#include "common/symbol_table.h"

namespace dqsq {
namespace {

class TermArenaTest : public ::testing::Test {
 protected:
  SymbolTable symbols_;
  TermArena arena_;
};

TEST_F(TermArenaTest, ConstantsAreHashConsed) {
  SymbolId a = symbols_.Intern("a");
  SymbolId b = symbols_.Intern("b");
  TermId ta = arena_.MakeConstant(a);
  TermId tb = arena_.MakeConstant(b);
  EXPECT_NE(ta, tb);
  EXPECT_EQ(arena_.MakeConstant(a), ta);
  EXPECT_TRUE(arena_.IsConstant(ta));
  EXPECT_FALSE(arena_.IsApp(ta));
  EXPECT_EQ(arena_.Symbol(ta), a);
  EXPECT_EQ(arena_.Depth(ta), 1u);
}

TEST_F(TermArenaTest, ApplicationsAreHashConsed) {
  SymbolId f = symbols_.Intern("f");
  TermId a = arena_.MakeConstant(symbols_.Intern("a"));
  TermId b = arena_.MakeConstant(symbols_.Intern("b"));
  std::vector<TermId> args{a, b};
  TermId fab = arena_.MakeApp(f, args);
  EXPECT_EQ(arena_.MakeApp(f, args), fab);
  std::vector<TermId> rev{b, a};
  EXPECT_NE(arena_.MakeApp(f, rev), fab);
  EXPECT_TRUE(arena_.IsApp(fab));
  ASSERT_EQ(arena_.Args(fab).size(), 2u);
  EXPECT_EQ(arena_.Args(fab)[0], a);
  EXPECT_EQ(arena_.Args(fab)[1], b);
  EXPECT_EQ(arena_.Depth(fab), 2u);
}

TEST_F(TermArenaTest, SameSymbolConstantAndNullaryAppDiffer) {
  SymbolId f = symbols_.Intern("f");
  TermId c = arena_.MakeConstant(f);
  TermId app = arena_.MakeApp(f, {});
  EXPECT_NE(c, app);
  EXPECT_TRUE(arena_.IsApp(app));
  EXPECT_FALSE(arena_.IsApp(c));
}

TEST_F(TermArenaTest, DepthOfNestedTerms) {
  SymbolId f = symbols_.Intern("f");
  SymbolId g = symbols_.Intern("g");
  TermId a = arena_.MakeConstant(symbols_.Intern("a"));
  TermId ga = arena_.MakeApp(g, {a});
  TermId fga = arena_.MakeApp(f, {ga, a});
  EXPECT_EQ(arena_.Depth(ga), 2u);
  EXPECT_EQ(arena_.Depth(fga), 3u);
}

TEST_F(TermArenaTest, ToStringRendersNesting) {
  SymbolId f = symbols_.Intern("f");
  SymbolId g = symbols_.Intern("g");
  TermId a = arena_.MakeConstant(symbols_.Intern("a"));
  TermId b = arena_.MakeConstant(symbols_.Intern("b"));
  TermId gb = arena_.MakeApp(g, {b});
  TermId t = arena_.MakeApp(f, {a, gb});
  EXPECT_EQ(arena_.ToString(t, symbols_), "f(a,g(b))");
  EXPECT_EQ(arena_.ToString(a, symbols_), "a");
}

TEST_F(TermArenaTest, ManyDistinctTermsStayDistinct) {
  SymbolId f = symbols_.Intern("f");
  TermId prev = arena_.MakeConstant(symbols_.Intern("seed"));
  std::vector<TermId> all{prev};
  for (int i = 0; i < 1000; ++i) {
    prev = arena_.MakeApp(f, {prev});
    all.push_back(prev);
  }
  EXPECT_EQ(arena_.Depth(prev), 1001u);
  // Rebuilding the same chain yields identical ids.
  TermId again = arena_.MakeConstant(symbols_.Intern("seed"));
  for (int i = 0; i < 1000; ++i) again = arena_.MakeApp(f, {again});
  EXPECT_EQ(again, prev);
}

}  // namespace
}  // namespace dqsq
