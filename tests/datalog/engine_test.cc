#include "datalog/engine.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace dqsq {
namespace {

TEST(EngineTest, CopyFactsDuplicatesDatabase) {
  DatalogContext ctx;
  Database src(&ctx);
  src.InsertByName("edge", {"a", "b"});
  src.InsertByName("edge", {"b", "c"});
  src.InsertByName("node", {"a"});
  Database dst(&ctx);
  CopyFacts(src, dst);
  EXPECT_EQ(dst.Dump(), src.Dump());
  // Copy into a non-empty db deduplicates.
  CopyFacts(src, dst);
  EXPECT_EQ(dst.TotalFacts(), 3u);
}

TEST(EngineTest, CountRelationFactsIncludesAdornedVariants) {
  DatalogContext ctx;
  Database db(&ctx);
  db.InsertByName("path", {"a", "b"});
  db.InsertByName("path__bf", {"a", "b"});
  db.InsertByName("path__fb", {"a", "b"});
  db.InsertByName("pathology", {"a"});
  EXPECT_EQ(CountRelationFacts(db, "path"), 3u);
}

TEST(EngineTest, ExtensionalQueryBypassesEvaluation) {
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    unrelated(X) :- base(X).
    base(a).
  )",
                              ctx);
  ASSERT_TRUE(program.ok());
  Database db(&ctx);
  db.InsertByName("edb_only", {"x", "y"});
  auto query = ParseQuery("edb_only(x, Y)", ctx);
  ASSERT_TRUE(query.ok());
  auto result = SolveQuery(*program, db, *query, Strategy::kQsq);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), 1u);
  EXPECT_EQ(result->derived_facts, 0u);
}

TEST(EngineTest, StrategyNamesAreDistinct) {
  std::set<std::string> names;
  for (Strategy s :
       {Strategy::kNaive, Strategy::kSemiNaive, Strategy::kMagic,
        Strategy::kQsq, Strategy::kQsqAllVars, Strategy::kQsqIterative}) {
    EXPECT_TRUE(names.insert(StrategyName(s)).second);
  }
}

TEST(EngineTest, EvalStatsPopulated) {
  DatalogContext ctx;
  QueryResult r = testing::RunQuery(ctx, R"(
    edge(a, b). edge(b, c).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )",
                                    "path(X, Y)", Strategy::kSemiNaive);
  EXPECT_GT(r.eval.rounds, 1u);
  EXPECT_GT(r.eval.rule_firings, 0u);
  EXPECT_GT(r.eval.join_probes, 0u);
  EXPECT_EQ(r.eval.depth_pruned, 0u);
}

TEST(EngineTest, AuxPlusAnswerEqualsDerived) {
  DatalogContext ctx;
  QueryResult r = testing::RunQuery(ctx, R"(
    edge(a, b). edge(b, c). edge(c, d).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )",
                                    "path(b, Y)", Strategy::kQsq);
  EXPECT_EQ(r.aux_facts + r.answer_facts, r.derived_facts);
  EXPECT_GT(r.answer_facts, 0u);
}

}  // namespace
}  // namespace dqsq
