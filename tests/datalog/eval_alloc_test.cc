// Steady-state allocation audit for the semi-naive hot path. The columnar
// engine's contract (DESIGN.md, "Columnar relation storage") is that once
// scratch buffers and tables are warm, evaluation rounds allocate nothing:
// probes copy into reusable scratch, dedup and indices grow geometrically,
// and the final (fixpoint-check) round does no insertion at all. This test
// counts global operator new calls per round via EvalOptions::round_hook
// and asserts the final round is allocation-free.
//
// Note: the counters track every allocation in the process, so the test
// binary must stay single-threaded (gtest default).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "datalog/engine.h"
#include "datalog/eval.h"
#include "datalog/parser.h"

namespace {
uint64_t g_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dqsq {
namespace {

struct RoundAllocs {
  static constexpr size_t kMaxRounds = 256;
  uint64_t at_round_end[kMaxRounds] = {};
  size_t rounds_seen = 0;
};

// Fixed-size recording (no allocation inside the hook itself).
void RecordRound(void* ctx, size_t round) {
  auto* rec = static_cast<RoundAllocs*>(ctx);
  ASSERT_LT(round, RoundAllocs::kMaxRounds);
  rec->at_round_end[round] = g_allocations;
  if (round + 1 > rec->rounds_seen) rec->rounds_seen = round + 1;
}

TEST(EvalAllocTest, FinalFixpointRoundAllocatesNothing) {
  DatalogContext ctx;
  // Cyclic transitive closure: 16 nodes in a ring. Semi-naive runs ~16
  // rounds of real derivation (path lengths grow by one per round) and
  // then one final round that derives nothing and confirms the fixpoint.
  std::string program_text;
  constexpr int kNodes = 16;
  for (int i = 0; i < kNodes; ++i) {
    program_text += "edge(v" + std::to_string(i) + ", v" +
                    std::to_string((i + 1) % kNodes) + ").\n";
  }
  program_text += "path(X, Y) :- edge(X, Y).\n";
  program_text += "path(X, Y) :- path(X, Z), edge(Z, Y).\n";
  auto program = ParseProgram(program_text, ctx);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  Database db(&ctx);
  RoundAllocs rec;
  EvalOptions options;
  options.round_hook = RecordRound;
  options.round_hook_ctx = &rec;
  auto stats = Evaluate(*program, db, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_GE(rec.rounds_seen, 3u);  // ring TC is genuinely multi-round
  EXPECT_EQ(stats->facts_derived, size_t{kNodes} * kNodes + kNodes)
      << "ring TC derives every (X, Y) pair";

  // The last round re-joined every rule against an empty delta and
  // inserted nothing: with warm scratch it must not allocate at all.
  uint64_t final_round_allocs = rec.at_round_end[rec.rounds_seen - 1] -
                                rec.at_round_end[rec.rounds_seen - 2];
  EXPECT_EQ(final_round_allocs, 0u)
      << "steady-state evaluation round allocated";
}

TEST(EvalAllocTest, LateDerivationRoundsAllocateOnlyForGrowth) {
  // Soft companion bound: across the whole run, allocation count stays
  // far below the number of facts derived — per-tuple allocation (the
  // pre-columnar unordered_map behavior) would exceed it many times over.
  DatalogContext ctx;
  std::string program_text;
  constexpr int kNodes = 24;
  for (int i = 0; i < kNodes; ++i) {
    program_text += "edge(v" + std::to_string(i) + ", v" +
                    std::to_string((i + 1) % kNodes) + ").\n";
  }
  program_text += "path(X, Y) :- edge(X, Y).\n";
  program_text += "path(X, Y) :- path(X, Z), edge(Z, Y).\n";
  auto program = ParseProgram(program_text, ctx);
  ASSERT_TRUE(program.ok());

  Database db(&ctx);
  uint64_t before = g_allocations;
  EvalOptions options;
  auto stats = Evaluate(*program, db, options);
  uint64_t during = g_allocations - before;
  ASSERT_TRUE(stats.ok());
  ASSERT_GT(stats->facts_derived, 500u);
  EXPECT_LT(during, stats->facts_derived)
      << "more than one allocation per derived fact: per-tuple allocation "
         "crept back into the hot path";
}

}  // namespace
}  // namespace dqsq
