#include "datalog/pattern.h"

#include <gtest/gtest.h>

#include "common/symbol_table.h"

namespace dqsq {
namespace {

class PatternTest : public ::testing::Test {
 protected:
  SymbolId Sym(const char* s) { return symbols_.Intern(s); }
  TermId Const(const char* s) { return arena_.MakeConstant(Sym(s)); }

  SymbolTable symbols_;
  TermArena arena_;
};

TEST_F(PatternTest, VariableBindsAndRebindsConsistently) {
  Pattern x = Pattern::Var(0);
  Substitution subst(1, kNoTerm);
  std::vector<VarId> trail;
  TermId a = Const("a");
  EXPECT_TRUE(MatchPattern(x, a, arena_, subst, trail));
  EXPECT_EQ(subst[0], a);
  // Same variable must match the same value.
  EXPECT_TRUE(MatchPattern(x, a, arena_, subst, trail));
  EXPECT_FALSE(MatchPattern(x, Const("b"), arena_, subst, trail));
}

TEST_F(PatternTest, ConstMatchesOnlyItself) {
  Pattern pa = Pattern::Const(Sym("a"));
  Substitution subst;
  std::vector<VarId> trail;
  EXPECT_TRUE(MatchPattern(pa, Const("a"), arena_, subst, trail));
  EXPECT_FALSE(MatchPattern(pa, Const("b"), arena_, subst, trail));
  TermId fa = arena_.MakeApp(Sym("a"), {});
  EXPECT_FALSE(MatchPattern(pa, fa, arena_, subst, trail));
}

TEST_F(PatternTest, AppDecomposesStructurally) {
  // f(X, a) against f(b, a) binds X=b; against f(b, c) fails.
  Pattern p = Pattern::App(Sym("f"),
                           {Pattern::Var(0), Pattern::Const(Sym("a"))});
  TermId fba = arena_.MakeApp(Sym("f"), {Const("b"), Const("a")});
  TermId fbc = arena_.MakeApp(Sym("f"), {Const("b"), Const("c")});
  Substitution subst(1, kNoTerm);
  std::vector<VarId> trail;
  EXPECT_TRUE(MatchPattern(p, fba, arena_, subst, trail));
  EXPECT_EQ(subst[0], Const("b"));
  UndoTrail(subst, trail, 0);
  EXPECT_EQ(subst[0], kNoTerm);
  EXPECT_FALSE(MatchPattern(p, fbc, arena_, subst, trail));
}

TEST_F(PatternTest, RepeatedVariableInsideApp) {
  // f(X, X) matches f(a, a) but not f(a, b).
  Pattern p = Pattern::App(Sym("f"), {Pattern::Var(0), Pattern::Var(0)});
  TermId faa = arena_.MakeApp(Sym("f"), {Const("a"), Const("a")});
  TermId fab = arena_.MakeApp(Sym("f"), {Const("a"), Const("b")});
  Substitution subst(1, kNoTerm);
  std::vector<VarId> trail;
  EXPECT_TRUE(MatchPattern(p, faa, arena_, subst, trail));
  UndoTrail(subst, trail, 0);
  EXPECT_FALSE(MatchPattern(p, fab, arena_, subst, trail));
}

TEST_F(PatternTest, UndoTrailRestoresMark) {
  Pattern p = Pattern::App(Sym("f"), {Pattern::Var(0), Pattern::Var(1)});
  TermId fab = arena_.MakeApp(Sym("f"), {Const("a"), Const("b")});
  Substitution subst(2, kNoTerm);
  std::vector<VarId> trail;
  subst[0] = Const("a");
  trail.push_back(0);
  size_t mark = trail.size();
  EXPECT_TRUE(MatchPattern(p, fab, arena_, subst, trail));
  UndoTrail(subst, trail, mark);
  EXPECT_EQ(subst[0], Const("a"));  // binding before the mark survives
  EXPECT_EQ(subst[1], kNoTerm);
}

TEST_F(PatternTest, GroundPatternBuildsTerm) {
  Pattern p = Pattern::App(Sym("f"),
                           {Pattern::Var(0), Pattern::Const(Sym("c"))});
  Substitution subst(1, Const("a"));
  TermId t = GroundPattern(p, subst, arena_);
  EXPECT_EQ(arena_.ToString(t, symbols_), "f(a,c)");
}

TEST_F(PatternTest, TryGroundReturnsNoTermWhenUnbound) {
  Pattern p = Pattern::App(Sym("f"), {Pattern::Var(0)});
  Substitution subst(1, kNoTerm);
  EXPECT_EQ(TryGroundPattern(p, subst, arena_), kNoTerm);
}

TEST_F(PatternTest, IsGroundAndCollectVars) {
  Pattern p = Pattern::App(
      Sym("f"), {Pattern::Var(2), Pattern::App(Sym("g"), {Pattern::Var(5)}),
                 Pattern::Const(Sym("c"))});
  EXPECT_FALSE(p.IsGround());
  std::vector<VarId> vars;
  p.CollectVars(&vars);
  EXPECT_EQ(vars, (std::vector<VarId>{2, 5}));
  Pattern q = Pattern::App(Sym("f"), {Pattern::Const(Sym("a"))});
  EXPECT_TRUE(q.IsGround());
}

TEST_F(PatternTest, ArityMismatchFailsMatch) {
  Pattern p = Pattern::App(Sym("f"), {Pattern::Var(0)});
  TermId fab = arena_.MakeApp(Sym("f"), {Const("a"), Const("b")});
  Substitution subst(1, kNoTerm);
  std::vector<VarId> trail;
  EXPECT_FALSE(MatchPattern(p, fab, arena_, subst, trail));
}

}  // namespace
}  // namespace dqsq
