#include "datalog/columnar.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace dqsq {
namespace {

TEST(FlatTupleSetTest, FindOnEmptyIsNotFound) {
  FlatTupleSet set;
  EXPECT_EQ(set.Find(123, [](uint32_t) { return true; }),
            FlatTupleSet::kNotFound);
  EXPECT_EQ(set.size(), 0u);
}

TEST(FlatTupleSetTest, InsertThenFindRoundTrips) {
  FlatTupleSet set;
  for (uint32_t row = 0; row < 100; ++row) {
    set.Insert(HashTermSpan({&row, 1}), row);
  }
  EXPECT_EQ(set.size(), 100u);
  for (uint32_t row = 0; row < 100; ++row) {
    EXPECT_EQ(set.Find(HashTermSpan({&row, 1}),
                       [&](uint32_t r) { return r == row; }),
              row);
  }
  uint32_t absent = 100;
  EXPECT_EQ(set.Find(HashTermSpan({&absent, 1}),
                     [](uint32_t) { return true; }),
            FlatTupleSet::kNotFound);
}

TEST(FlatTupleSetTest, InsertIfAbsentIsSingleProbeFindOrInsert) {
  FlatTupleSet set;
  uint32_t key = 7;
  uint64_t h = HashTermSpan({&key, 1});
  EXPECT_TRUE(set.InsertIfAbsent(h, 0, [](uint32_t) { return true; }));
  EXPECT_FALSE(set.InsertIfAbsent(h, 1, [](uint32_t r) { return r == 0; }));
  EXPECT_EQ(set.size(), 1u);
  // Same hash but eq rejects every resident row (a full-tuple hash
  // collision between different tuples): a new row is recorded alongside
  // the colliding one, and both stay findable through their own eq.
  EXPECT_TRUE(set.InsertIfAbsent(h, 2, [](uint32_t) { return false; }));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.Find(h, [](uint32_t r) { return r == 0; }), 0u);
  EXPECT_EQ(set.Find(h, [](uint32_t r) { return r == 2; }), 2u);
}

TEST(FlatTupleSetTest, SurvivesGrowthAcrossManyInserts) {
  FlatTupleSet set;
  constexpr uint32_t kRows = 10000;  // many doublings past the initial 16
  for (uint32_t row = 0; row < kRows; ++row) {
    EXPECT_TRUE(set.InsertIfAbsent(HashTermSpan({&row, 1}), row,
                                   [&](uint32_t r) { return r == row; }));
  }
  EXPECT_EQ(set.size(), kRows);
  for (uint32_t row = 0; row < kRows; ++row) {
    EXPECT_EQ(set.Find(HashTermSpan({&row, 1}),
                       [&](uint32_t r) { return r == row; }),
              row)
        << row;
  }
}

TEST(FlatTupleSetTest, ReservePreservesContents) {
  FlatTupleSet set;
  for (uint32_t row = 0; row < 10; ++row) {
    set.Insert(HashTermSpan({&row, 1}), row);
  }
  set.Reserve(5000);
  for (uint32_t row = 0; row < 10; ++row) {
    EXPECT_EQ(set.Find(HashTermSpan({&row, 1}),
                       [&](uint32_t r) { return r == row; }),
              row);
  }
}

// RunIndex tests drive the index the way Relation does: one key per
// distinct value of a single conceptual column, rows appended ascending.
class RunIndexFixture {
 public:
  void Add(TermId key, uint32_t row) {
    if (row >= key_of_row_.size()) key_of_row_.resize(row + 1);
    key_of_row_[row] = key;
    index_.Add(HashTermSpan({&key, 1}), row, [&](uint32_t first_row) {
      return key_of_row_[first_row] == key;
    });
  }

  uint32_t FindRun(TermId key) const {
    return index_.FindRun(HashTermSpan({&key, 1}), [&](uint32_t first_row) {
      return key_of_row_[first_row] == key;
    });
  }

  std::vector<uint32_t> Rows(TermId key, uint32_t lo = 0,
                             uint32_t hi = 0xffffffffu) const {
    std::vector<uint32_t> out;
    uint32_t run = FindRun(key);
    if (run != RunIndex::kNoRun) index_.CopyRun(run, lo, hi, out);
    return out;
  }

  RunIndex& index() { return index_; }

 private:
  RunIndex index_;
  std::vector<TermId> key_of_row_;
};

TEST(RunIndexTest, FindRunOnEmptyIsNoRun) {
  RunIndexFixture f;
  EXPECT_EQ(f.FindRun(1), RunIndex::kNoRun);
}

TEST(RunIndexTest, RowsOfAKeyComeBackAscending) {
  RunIndexFixture f;
  // Interleave two keys.
  for (uint32_t row = 0; row < 10; ++row) f.Add(/*key=*/row % 2, row);
  EXPECT_EQ(f.Rows(0), (std::vector<uint32_t>{0, 2, 4, 6, 8}));
  EXPECT_EQ(f.Rows(1), (std::vector<uint32_t>{1, 3, 5, 7, 9}));
  EXPECT_EQ(f.index().num_runs(), 2u);
}

TEST(RunIndexTest, CopyRunWindowsTheRun) {
  RunIndexFixture f;
  for (uint32_t row = 0; row < 100; ++row) f.Add(/*key=*/1, row);
  EXPECT_EQ(f.Rows(1, 40, 45), (std::vector<uint32_t>{40, 41, 42, 43, 44}));
  // Window above the run's last row: the last_row quick-reject fires.
  EXPECT_TRUE(f.Rows(1, 100, 200).empty());
  // Window below the run's first row.
  RunIndexFixture g;
  for (uint32_t row = 50; row < 60; ++row) g.Add(/*key=*/1, row);
  EXPECT_TRUE(g.Rows(1, 0, 50).empty());
  EXPECT_EQ(g.Rows(1, 0, 51), (std::vector<uint32_t>{50}));
}

TEST(RunIndexTest, LongRunsSpanChunksAndWindowSkipsWholeChunks) {
  RunIndexFixture f;
  constexpr uint32_t kRows = 1000;  // well past one 14-row chunk
  for (uint32_t row = 0; row < kRows; ++row) f.Add(/*key=*/9, row);
  std::vector<uint32_t> all = f.Rows(9);
  ASSERT_EQ(all.size(), kRows);
  for (uint32_t row = 0; row < kRows; ++row) EXPECT_EQ(all[row], row);
  // A tail window exercises the per-chunk skip (chunks wholly below lo).
  EXPECT_EQ(f.Rows(9, 995, kRows),
            (std::vector<uint32_t>{995, 996, 997, 998, 999}));
  // A mid-run window split across chunk boundaries.
  std::vector<uint32_t> mid = f.Rows(9, 13, 29);
  ASSERT_EQ(mid.size(), 16u);
  for (size_t i = 0; i < mid.size(); ++i) EXPECT_EQ(mid[i], 13 + i);
}

TEST(RunIndexTest, ManyKeysSurviveSlotTableGrowth) {
  RunIndexFixture f;
  constexpr uint32_t kKeys = 2000;
  for (uint32_t k = 0; k < kKeys; ++k) f.Add(/*key=*/k, k);
  EXPECT_EQ(f.index().num_runs(), kKeys);
  for (uint32_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(f.Rows(k), (std::vector<uint32_t>{k})) << k;
  }
}

TEST(RunIndexTest, ReserveRunsPreservesExistingRuns) {
  RunIndexFixture f;
  for (uint32_t k = 0; k < 10; ++k) f.Add(k, k);
  f.index().ReserveRuns(5000);
  for (uint32_t k = 0; k < 10; ++k) {
    EXPECT_EQ(f.Rows(k), (std::vector<uint32_t>{k}));
  }
}

// Bulk build must land in exactly the state incremental maintenance
// produces: same runs, same row order, same window behavior.
TEST(BuildRunIndexTest, BulkBuildMatchesIncrementalAdd) {
  Rng rng(42);
  constexpr uint32_t kArity = 3;
  constexpr uint32_t kRows = 500;
  std::vector<std::vector<TermId>> columns(kArity);
  for (uint32_t row = 0; row < kRows; ++row) {
    for (uint32_t c = 0; c < kArity; ++c) {
      columns[c].push_back(static_cast<TermId>(rng.NextBelow(7)));
    }
  }
  for (uint32_t mask : {1u, 2u, 4u, 3u, 5u, 7u}) {
    RunIndex bulk;
    BuildRunIndex(columns, kRows, mask, bulk);

    auto key_of = [&](uint32_t row) {
      std::vector<TermId> key;
      for (uint32_t c = 0; c < kArity; ++c) {
        if (mask & (1u << c)) key.push_back(columns[c][row]);
      }
      return key;
    };
    auto rows_equal = [&](uint32_t a, uint32_t b) {
      for (uint32_t c = 0; c < kArity; ++c) {
        if ((mask & (1u << c)) && columns[c][a] != columns[c][b]) return false;
      }
      return true;
    };
    RunIndex inc;
    for (uint32_t row = 0; row < kRows; ++row) {
      inc.Add(HashTermSpan(key_of(row)), row,
              [&](uint32_t first_row) { return rows_equal(first_row, row); });
    }
    ASSERT_EQ(bulk.num_runs(), inc.num_runs()) << "mask=" << mask;
    for (uint32_t row = 0; row < kRows; ++row) {
      std::vector<TermId> key = key_of(row);
      auto eq = [&](uint32_t first_row) { return rows_equal(first_row, row); };
      uint32_t br = bulk.FindRun(HashTermSpan(key), eq);
      uint32_t ir = inc.FindRun(HashTermSpan(key), eq);
      ASSERT_NE(br, RunIndex::kNoRun);
      ASSERT_NE(ir, RunIndex::kNoRun);
      std::vector<uint32_t> bulk_rows, inc_rows;
      bulk.CopyRun(br, 0, kRows, bulk_rows);
      inc.CopyRun(ir, 0, kRows, inc_rows);
      EXPECT_EQ(bulk_rows, inc_rows) << "mask=" << mask << " row=" << row;
      // Windowed slices agree too.
      bulk_rows.clear();
      inc_rows.clear();
      bulk.CopyRun(br, kRows / 3, 2 * kRows / 3, bulk_rows);
      inc.CopyRun(ir, kRows / 3, 2 * kRows / 3, inc_rows);
      EXPECT_EQ(bulk_rows, inc_rows) << "mask=" << mask << " row=" << row;
    }
  }
}

}  // namespace
}  // namespace dqsq
