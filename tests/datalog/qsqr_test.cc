#include "datalog/qsqr.h"

#include <gtest/gtest.h>

#include "datalog/engine.h"
#include "tests/test_util.h"

namespace dqsq {
namespace {

using ::dqsq::testing::RunQuery;
using ::dqsq::testing::RunQueryStrings;

TEST(QsqrTest, ChainReachability) {
  DatalogContext ctx;
  auto answers = RunQueryStrings(ctx, R"(
    edge(a, b). edge(b, c). edge(c, d). edge(b, e).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )",
                                 "path(a, Y)", Strategy::kQsqIterative);
  EXPECT_EQ(answers, (std::vector<std::string>{"b", "c", "d", "e"}));
}

TEST(QsqrTest, MatchesRewritingOnFigure3) {
  const char* program = R"(
    r@r(X, Y) :- a@r(X, Y).
    r@r(X, Y) :- s@s(X, Z), t@t(Z, Y).
    s@s(X, Y) :- r@r(X, Y), b@s(Y, Z).
    t@t(X, Y) :- c@t(X, Y).
    a@r("1", "2").  a@r("2", "3").  a@r("7", "8").
    b@s("2", "5").  b@s("3", "6").
    c@t("2", "4").  c@t("3", "9").
  )";
  DatalogContext c1, c2;
  auto top_down =
      RunQueryStrings(c1, program, "r@r(\"1\", Y)", Strategy::kQsqIterative);
  auto rewritten = RunQueryStrings(c2, program, "r@r(\"1\", Y)",
                                   Strategy::kQsq);
  EXPECT_EQ(top_down, rewritten);
  EXPECT_EQ(top_down, (std::vector<std::string>{"2", "4"}));
}

TEST(QsqrTest, AnswerTablesMatchRewritingRealization) {
  // The two realizations of QSQ must build the same adorned answer tables
  // (the in_ tables too): the strongest cross-check between them.
  const char* program = R"(
    edge(a, b). edge(b, c). edge(c, d).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )";
  DatalogContext c1, c2;
  QueryResult td = RunQuery(c1, program, "path(b, Y)",
                            Strategy::kQsqIterative);
  QueryResult rw = RunQuery(c2, program, "path(b, Y)", Strategy::kQsq);
  EXPECT_EQ(td.answer_facts, rw.answer_facts);
  EXPECT_EQ(testing::AnswerStrings(td.answers, c1),
            testing::AnswerStrings(rw.answers, c2));
}

TEST(QsqrTest, SameGenerationRecursion) {
  const char* program = R"(
    flat(a, q). flat(m, n).
    up(a, e). up(e, m).
    down(n, f). down(f, b).
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
  )";
  DatalogContext ctx;
  auto answers =
      RunQueryStrings(ctx, program, "sg(a, Y)", Strategy::kQsqIterative);
  EXPECT_EQ(answers, (std::vector<std::string>{"b", "q"}));
}

TEST(QsqrTest, FunctionSymbolsAndBoundDemand) {
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    zero(z).
    num(X) :- zero(X).
    num(s(X)) :- num(X).
  )",
                              ctx);
  ASSERT_TRUE(program.ok());
  auto q = ParseQuery("num(s(s(z)))", ctx);
  ASSERT_TRUE(q.ok());
  Database db(&ctx);
  EvalOptions opts;
  opts.max_facts = 10000;
  auto result = SolveQuery(*program, db, *q, Strategy::kQsqIterative, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->answers.size(), 1u);
}

TEST(QsqrTest, DisequalitiesRespected) {
  DatalogContext ctx;
  auto answers = RunQueryStrings(ctx, R"(
    edge(a, b). edge(b, a). edge(b, c).
    reach(X, Y) :- edge(X, Y).
    reach(X, Y) :- edge(X, Z), reach(Z, Y), X != Y.
  )",
                                 "reach(a, Y)", Strategy::kQsqIterative);
  DatalogContext ctx2;
  auto expected = RunQueryStrings(ctx2, R"(
    edge(a, b). edge(b, a). edge(b, c).
    reach(X, Y) :- edge(X, Y).
    reach(X, Y) :- edge(X, Z), reach(Z, Y), X != Y.
  )",
                                  "reach(a, Y)", Strategy::kSemiNaive);
  EXPECT_EQ(answers, expected);
}

TEST(QsqrTest, RejectsNegation) {
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    node(a). bad(b).
    good(X) :- node(X), not bad(X).
  )",
                              ctx);
  ASSERT_TRUE(program.ok());
  auto q = ParseQuery("good(X)", ctx);
  ASSERT_TRUE(q.ok());
  Database db(&ctx);
  EXPECT_EQ(
      SolveQuery(*program, db, *q, Strategy::kQsqIterative).status().code(),
      StatusCode::kUnimplemented);
}

TEST(QsqrTest, BudgetOnDivergentDemand) {
  // All-free demand on an infinite relation must hit the fact budget.
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    n(z).
    n(s(X)) :- n(X).
  )",
                              ctx);
  ASSERT_TRUE(program.ok());
  auto q = ParseQuery("n(X)", ctx);
  ASSERT_TRUE(q.ok());
  Database db(&ctx);
  EvalOptions opts;
  opts.max_facts = 200;
  auto result = SolveQuery(*program, db, *q, Strategy::kQsqIterative, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace dqsq
