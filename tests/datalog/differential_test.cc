// Differential testing: randomly generated positive Datalog programs are
// evaluated with every strategy — naive, semi-naive, magic, both QSQ
// realizations — and must produce identical answers. Parameterized over
// generator seeds (TEST_P), so each seed is an independently reported
// case.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datalog/engine.h"
#include "tests/test_util.h"

namespace dqsq {
namespace {

// Generates a random function-free positive program over a small constant
// domain, guaranteed range-restricted, plus a query on a random IDB
// relation with a bound first argument.
struct GeneratedCase {
  std::string program;
  std::string query;
};

GeneratedCase GenerateProgram(uint64_t seed) {
  Rng rng(seed);
  GeneratedCase out;
  const int num_consts = 5;
  const int num_edb = 3;
  const int num_idb = 3;
  auto constant = [&](int i) { return "c" + std::to_string(i); };

  // EDB facts: binary relations e0..e{k-1}.
  for (int r = 0; r < num_edb; ++r) {
    int facts = 3 + static_cast<int>(rng.NextBelow(6));
    for (int f = 0; f < facts; ++f) {
      out.program += "e" + std::to_string(r) + "(" +
                     constant(static_cast<int>(rng.NextBelow(num_consts))) +
                     ", " +
                     constant(static_cast<int>(rng.NextBelow(num_consts))) +
                     ").\n";
    }
  }
  // IDB rules: i0..i{m-1}, each defined by 1-2 rules with 1-3 body atoms.
  // Variables X0..X3; heads use (X0, X1); bodies chain variables so the
  // rule is range-restricted by construction.
  for (int r = 0; r < num_idb; ++r) {
    int rules = 1 + static_cast<int>(rng.NextBelow(2));
    for (int k = 0; k < rules; ++k) {
      int body_len = 1 + static_cast<int>(rng.NextBelow(3));
      std::string body;
      // A chain X0 -> X1 via intermediates; each atom is a random EDB or
      // an earlier IDB (acyclic through indices, with one chance of
      // self-recursion for relation r via a strictly earlier atom chain).
      for (int b = 0; b < body_len; ++b) {
        std::string from = (b == 0) ? "X0" : "Y" + std::to_string(b - 1);
        std::string to =
            (b == body_len - 1) ? "X1" : "Y" + std::to_string(b);
        bool use_idb = r > 0 && rng.NextBool(0.4);
        std::string rel;
        if (use_idb) {
          rel = "i" + std::to_string(rng.NextBelow(r));  // earlier IDB
        } else {
          rel = "e" + std::to_string(rng.NextBelow(num_edb));
        }
        if (!body.empty()) body += ", ";
        body += rel + "(" + from + ", " + to + ")";
      }
      // Occasional recursive rule: i_r(X0, X1) :- e?(X0, Y0), i_r(Y0, X1).
      if (rng.NextBool(0.5)) {
        out.program += "i" + std::to_string(r) + "(X0, X1) :- e" +
                       std::to_string(rng.NextBelow(num_edb)) +
                       "(X0, Y0), i" + std::to_string(r) + "(Y0, X1).\n";
      }
      out.program +=
          "i" + std::to_string(r) + "(X0, X1) :- " + body + ".\n";
    }
  }
  int target = static_cast<int>(rng.NextBelow(num_idb));
  out.query = "i" + std::to_string(target) + "(" +
              constant(static_cast<int>(rng.NextBelow(num_consts))) + ", Y)";
  return out;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AllStrategiesAgree) {
  GeneratedCase c = GenerateProgram(GetParam());
  SCOPED_TRACE(c.program + "?- " + c.query);
  std::vector<std::string> expected;
  bool first = true;
  for (Strategy strategy :
       {Strategy::kNaive, Strategy::kSemiNaive, Strategy::kMagic,
        Strategy::kQsq, Strategy::kQsqAllVars, Strategy::kQsqIterative}) {
    DatalogContext ctx;
    auto answers =
        testing::RunQueryStrings(ctx, c.program, c.query, strategy);
    if (first) {
      expected = answers;
      first = false;
    } else {
      EXPECT_EQ(answers, expected) << StrategyName(strategy);
    }
  }
}

TEST_P(DifferentialTest, QsqRealizationsBuildIdenticalTables) {
  GeneratedCase c = GenerateProgram(GetParam());
  SCOPED_TRACE(c.program + "?- " + c.query);
  DatalogContext c1, c2;
  QueryResult rw =
      testing::RunQuery(c1, c.program, c.query, Strategy::kQsq);
  QueryResult td =
      testing::RunQuery(c2, c.program, c.query, Strategy::kQsqIterative);
  EXPECT_EQ(rw.answer_facts, td.answer_facts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace dqsq
