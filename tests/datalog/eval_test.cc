#include "datalog/eval.h"

#include <gtest/gtest.h>

#include "datalog/engine.h"
#include "datalog/parser.h"
#include "tests/test_util.h"

namespace dqsq {
namespace {

using ::dqsq::testing::AnswerStrings;
using ::dqsq::testing::RunQueryStrings;

const char* kTransitiveClosure = R"(
  edge(a, b).
  edge(b, c).
  edge(c, d).
  edge(b, e).
  path(X, Y) :- edge(X, Y).
  path(X, Y) :- edge(X, Z), path(Z, Y).
)";

TEST(EvalTest, TransitiveClosureNaive) {
  DatalogContext ctx;
  auto answers =
      RunQueryStrings(ctx, kTransitiveClosure, "path(a, Y)", Strategy::kNaive);
  EXPECT_EQ(answers, (std::vector<std::string>{"b", "c", "d", "e"}));
}

TEST(EvalTest, TransitiveClosureSemiNaive) {
  DatalogContext ctx;
  auto answers = RunQueryStrings(ctx, kTransitiveClosure, "path(a, Y)",
                                 Strategy::kSemiNaive);
  EXPECT_EQ(answers, (std::vector<std::string>{"b", "c", "d", "e"}));
}

TEST(EvalTest, SemiNaiveDerivesSameFactsAsNaive) {
  DatalogContext ctx;
  auto program = ParseProgram(kTransitiveClosure, ctx);
  ASSERT_TRUE(program.ok());
  Database naive_db(&ctx);
  Database semi_db(&ctx);
  EvalOptions naive_opts;
  naive_opts.seminaive = false;
  EvalOptions semi_opts;
  ASSERT_TRUE(Evaluate(*program, naive_db, naive_opts).ok());
  ASSERT_TRUE(Evaluate(*program, semi_db, semi_opts).ok());
  EXPECT_EQ(naive_db.Dump(), semi_db.Dump());
  EXPECT_EQ(naive_db.TotalFacts(), semi_db.TotalFacts());
}

TEST(EvalTest, CyclicGraphTerminates) {
  DatalogContext ctx;
  auto answers = RunQueryStrings(ctx, R"(
    edge(a, b). edge(b, c). edge(c, a).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )",
                                 "path(a, Y)", Strategy::kSemiNaive);
  EXPECT_EQ(answers, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(EvalTest, DisequalityFiltersDerivations) {
  DatalogContext ctx;
  auto answers = RunQueryStrings(ctx, R"(
    node(a). node(b). node(c).
    pair(X, Y) :- node(X), node(Y), X != Y.
  )",
                                 "pair(X, Y)", Strategy::kSemiNaive);
  EXPECT_EQ(answers.size(), 6u);  // 3*3 minus the 3 diagonal pairs
  for (const std::string& s : answers) {
    EXPECT_NE(s, "a,a");
    EXPECT_NE(s, "b,b");
    EXPECT_NE(s, "c,c");
  }
}

TEST(EvalTest, DisequalityAgainstConstant) {
  DatalogContext ctx;
  auto answers = RunQueryStrings(ctx, R"(
    node(a). node(b).
    notb(X) :- node(X), X != b.
  )",
                                 "notb(X)", Strategy::kSemiNaive);
  EXPECT_EQ(answers, (std::vector<std::string>{"a"}));
}

TEST(EvalTest, FunctionSymbolsConstructTerms) {
  DatalogContext ctx;
  auto answers = RunQueryStrings(ctx, R"(
    base(a).
    wrapped(f(X)) :- base(X).
    double(g(X, X)) :- base(X).
  )",
                                 "wrapped(W)", Strategy::kSemiNaive);
  EXPECT_EQ(answers, (std::vector<std::string>{"f(a)"}));
}

TEST(EvalTest, FunctionSymbolsDecomposeInBodies) {
  DatalogContext ctx;
  auto answers = RunQueryStrings(ctx, R"(
    cell(f(a, b)).
    cell(f(c, d)).
    left(X) :- cell(f(X, Y)).
  )",
                                 "left(X)", Strategy::kSemiNaive);
  EXPECT_EQ(answers, (std::vector<std::string>{"a", "c"}));
}

TEST(EvalTest, InfiniteProgramHitsDepthBudget) {
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    n(z).
    n(s(X)) :- n(X).
  )",
                              ctx);
  ASSERT_TRUE(program.ok());
  Database db(&ctx);
  EvalOptions opts;
  opts.max_term_depth = 5;
  opts.depth_policy = EvalOptions::DepthPolicy::kPrune;
  auto stats = Evaluate(*program, db, opts);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // z, s(z), ..., s^4(z): depth cap 5 keeps exactly 5 numerals.
  PredicateId n;
  ASSERT_TRUE(ctx.LookupPredicate("n", &n));
  EXPECT_EQ(db.Find(RelId{n, ctx.local_peer()})->size(), 5u);
  EXPECT_GT(stats->depth_pruned, 0u);
}

TEST(EvalTest, InfiniteProgramErrorsUnderErrorPolicy) {
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    n(z).
    n(s(X)) :- n(X).
  )",
                              ctx);
  ASSERT_TRUE(program.ok());
  Database db(&ctx);
  EvalOptions opts;
  opts.max_term_depth = 5;
  opts.depth_policy = EvalOptions::DepthPolicy::kError;
  auto stats = Evaluate(*program, db, opts);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvalTest, MaxFactsBudgetStopsRunaway) {
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    n(z).
    n(s(X)) :- n(X).
  )",
                              ctx);
  ASSERT_TRUE(program.ok());
  Database db(&ctx);
  EvalOptions opts;
  opts.max_facts = 100;
  auto stats = Evaluate(*program, db, opts);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvalTest, EmptyProgramIsFixpointImmediately) {
  DatalogContext ctx;
  Program program;
  Database db(&ctx);
  auto stats = Evaluate(program, db, EvalOptions{});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->facts_derived, 0u);
}

TEST(EvalTest, MutualRecursionAcrossRelations) {
  DatalogContext ctx;
  auto answers = RunQueryStrings(ctx, R"(
    succ(n0, n1). succ(n1, n2). succ(n2, n3). succ(n3, n4).
    even(n0).
    odd(X) :- succ(Y, X), even(Y).
    even(X) :- succ(Y, X), odd(Y).
  )",
                                 "even(X)", Strategy::kSemiNaive);
  EXPECT_EQ(answers, (std::vector<std::string>{"n0", "n2", "n4"}));
}

TEST(EvalTest, DistributedFactsKeyedByPeer) {
  DatalogContext ctx;
  // The same predicate at different peers holds different facts (global
  // program semantics P^g: the peer is an extra column).
  auto answers = RunQueryStrings(ctx, R"(
    stock@paris(wine).
    stock@rome(pasta).
    menu(X) :- stock@paris(X).
  )",
                                 "menu(X)", Strategy::kSemiNaive);
  EXPECT_EQ(answers, (std::vector<std::string>{"wine"}));
}

TEST(EvalTest, AskOnGroundQueryChecksMembership) {
  DatalogContext ctx;
  auto program = ParseProgram("edge(a, b).", ctx);
  ASSERT_TRUE(program.ok());
  Database db(&ctx);
  ASSERT_TRUE(Evaluate(*program, db, EvalOptions{}).ok());
  auto yes = ParseQuery("edge(a, b)", ctx);
  auto no = ParseQuery("edge(b, a)", ctx);
  ASSERT_TRUE(yes.ok() && no.ok());
  EXPECT_EQ(Ask(db, yes->atom, yes->num_vars).size(), 1u);
  EXPECT_EQ(Ask(db, no->atom, no->num_vars).size(), 0u);
}

}  // namespace
}  // namespace dqsq
