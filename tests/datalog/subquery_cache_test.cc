#include "datalog/subquery_cache.h"

#include <gtest/gtest.h>

namespace dqsq {
namespace {

TEST(SubqueryCacheTest, PutGetAndStats) {
  SubqueryCache cache(1024);
  std::string value;
  EXPECT_FALSE(cache.Get("k", &value));
  EXPECT_EQ(cache.misses(), 1u);

  cache.Put("k", "answer");
  ASSERT_TRUE(cache.Get("k", &value));
  EXPECT_EQ(value, "answer");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), std::string("k").size() + value.size());
}

TEST(SubqueryCacheTest, PutReplacesAndUpdatesBytes) {
  SubqueryCache cache(1024);
  cache.Put("k", "short");
  cache.Put("k", "a-much-longer-value");
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), 1u + 19u);
  std::string value;
  ASSERT_TRUE(cache.Get("k", &value));
  EXPECT_EQ(value, "a-much-longer-value");
}

TEST(SubqueryCacheTest, EvictsLeastRecentlyUsedToBudget) {
  // Each entry is 4 bytes (1 key + 3 value); budget holds two of them.
  SubqueryCache cache(8);
  cache.Put("a", "aaa");
  cache.Put("b", "bbb");
  ASSERT_TRUE(cache.Get("a", nullptr));  // a is now most recently used
  cache.Put("c", "ccc");                 // evicts b
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Get("a", nullptr));
  EXPECT_FALSE(cache.Get("b", nullptr));
  EXPECT_TRUE(cache.Get("c", nullptr));
}

TEST(SubqueryCacheTest, OversizedEntryNotAdmitted) {
  SubqueryCache cache(4);
  cache.Put("key", "value-way-over-budget");
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  // The drop is audited, not silent — and resident entries are untouched.
  EXPECT_EQ(cache.oversize_rejects(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
  cache.Put("a", "aa");
  cache.Put("key", "value-way-over-budget");
  EXPECT_EQ(cache.oversize_rejects(), 2u);
  EXPECT_TRUE(cache.Get("a", nullptr)) << "reject must not evict residents";
}

TEST(SubqueryCacheTest, OversizedUpdateOfExistingKeyIsSweptOut) {
  // Regression: the update path replaces the value BEFORE the budget
  // sweep. If the new value alone exceeds the whole budget, the entry
  // must be evicted (never lingering as an over-budget resident) and the
  // Put counted as an oversize reject.
  SubqueryCache cache(8);
  cache.Put("k", "vvv");
  ASSERT_EQ(cache.entries(), 1u);
  cache.Put("k", "value-way-over-budget");
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.oversize_rejects(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.Get("k", nullptr));
}

TEST(SubqueryCacheTest, GrowingUpdateEvictsOthersNotItself) {
  // Update-existing-key eviction path: a value that grows within budget
  // evicts LRU neighbours, keeping the updated (most recently used) entry.
  SubqueryCache cache(12);
  cache.Put("a", "aaa");  // 4 bytes
  cache.Put("b", "bbb");  // 4 bytes
  cache.Put("c", "ccc");  // 4 bytes -> full
  cache.Put("a", "aaaaaaa");  // 8 bytes: a becomes MRU, b evicted
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.bytes(), 12u);
  EXPECT_EQ(cache.oversize_rejects(), 0u);
  std::string value;
  ASSERT_TRUE(cache.Get("a", &value));
  EXPECT_EQ(value, "aaaaaaa");
  EXPECT_FALSE(cache.Get("b", nullptr));
  EXPECT_TRUE(cache.Get("c", nullptr));
}

TEST(SubqueryCacheTest, ZeroCapacityDisablesCaching) {
  SubqueryCache cache(0);
  cache.Put("k", "v");
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_FALSE(cache.Get("k", nullptr));
}

}  // namespace
}  // namespace dqsq
