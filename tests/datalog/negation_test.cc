#include <gtest/gtest.h>

#include "datalog/engine.h"
#include "datalog/parser.h"
#include "tests/test_util.h"

namespace dqsq {
namespace {

using ::dqsq::testing::RunQueryStrings;

TEST(NegationTest, ParserAcceptsNotAtoms) {
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    node(a). node(b). edge(a, b).
    isolated(X) :- node(X), not edge(X, X), not edge(a, X).
  )",
                              ctx);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const Rule& rule = program->rules.back();
  EXPECT_EQ(rule.body.size(), 1u);
  EXPECT_EQ(rule.negative.size(), 2u);
  EXPECT_EQ(RuleToString(rule, ctx),
            "isolated(X) :- node(X), not edge(X,X), not edge(a,X).");
}

TEST(NegationTest, UnsafeNegationRejected) {
  DatalogContext ctx;
  // Y appears only under negation.
  auto program = ParseProgram("p(X) :- node(X), not edge(X, Y).", ctx);
  EXPECT_FALSE(program.ok());
}

TEST(NegationTest, SetDifference) {
  DatalogContext ctx;
  auto answers = RunQueryStrings(ctx, R"(
    all(a). all(b). all(c).
    bad(b).
    good(X) :- all(X), not bad(X).
  )",
                                 "good(X)", Strategy::kSemiNaive);
  EXPECT_EQ(answers, (std::vector<std::string>{"a", "c"}));
}

TEST(NegationTest, WinMoveGame) {
  // The classical stratified... actually win-move is NOT stratified in
  // general; this instance is an acyclic game graph, but predicate-level
  // stratification still rejects win :- move, not win. Verify rejection.
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    move(a, b). move(b, c).
    win(X) :- move(X, Y), not win(Y).
  )",
                              ctx);
  ASSERT_TRUE(program.ok());
  auto strata = StratifyProgram(*program, ctx);
  EXPECT_FALSE(strata.ok());
}

TEST(NegationTest, TwoStrataEvaluateInOrder) {
  // reach (stratum 0), unreach = complement (stratum 1), flagged on top.
  DatalogContext ctx;
  auto answers = RunQueryStrings(ctx, R"(
    node(a). node(b). node(c). node(d).
    edge(a, b). edge(b, c).
    reach(a).
    reach(Y) :- reach(X), edge(X, Y).
    unreach(X) :- node(X), not reach(X).
    alert(X) :- unreach(X), not whitelisted(X).
    whitelisted(d).
  )",
                                 "unreach(X)", Strategy::kSemiNaive);
  EXPECT_EQ(answers, (std::vector<std::string>{"d"}));

  DatalogContext ctx2;
  auto alerts = RunQueryStrings(ctx2, R"(
    node(a). node(b). node(c). node(d). node(e).
    edge(a, b).
    reach(a).
    reach(Y) :- reach(X), edge(X, Y).
    unreach(X) :- node(X), not reach(X).
    alert(X) :- unreach(X), not whitelisted(X).
    whitelisted(d).
  )",
                                 "alert(X)", Strategy::kSemiNaive);
  EXPECT_EQ(alerts, (std::vector<std::string>{"c", "e"}));
}

TEST(NegationTest, StratifiedNaiveMatchesSemiNaive) {
  const char* program = R"(
    node(a). node(b). node(c).
    edge(a, b).
    reach(a).
    reach(Y) :- reach(X), edge(X, Y).
    unreach(X) :- node(X), not reach(X).
  )";
  DatalogContext c1, c2;
  EXPECT_EQ(RunQueryStrings(c1, program, "unreach(X)", Strategy::kNaive),
            RunQueryStrings(c2, program, "unreach(X)", Strategy::kSemiNaive));
}

TEST(NegationTest, StratifyComputesLevels) {
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    base(a).
    p(X) :- base(X).
    q(X) :- base(X), not p(X).
    s(X) :- q(X), not p(X).
    t(X) :- s(X), not q(X).
  )",
                              ctx);
  ASSERT_TRUE(program.ok());
  auto strata = StratifyProgram(*program, ctx);
  ASSERT_TRUE(strata.ok()) << strata.status().ToString();
  // base/p at 0, q at 1, s at >= 1 (needs p complete), t at >= 2.
  EXPECT_EQ((*strata)[0], 0u);  // base fact
  EXPECT_EQ((*strata)[1], 0u);  // p
  EXPECT_EQ((*strata)[2], 1u);  // q
  EXPECT_GE((*strata)[3], 1u);  // s
  EXPECT_GE((*strata)[4], 2u);  // t
}

TEST(NegationTest, GroundNegatedFactRule) {
  DatalogContext ctx;
  auto answers = RunQueryStrings(ctx, R"(
    present(a).
    flag(yes) :- not present(b).
    flag(no) :- not present(a).
  )",
                                 "flag(X)", Strategy::kSemiNaive);
  EXPECT_EQ(answers, (std::vector<std::string>{"yes"}));
}

TEST(NegationTest, QsqRejectsNegation) {
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    node(a).
    p(X) :- node(X), not q(X).
    q(b).
  )",
                              ctx);
  ASSERT_TRUE(program.ok());
  auto query = ParseQuery("p(X)", ctx);
  ASSERT_TRUE(query.ok());
  Database db(&ctx);
  auto result = SolveQuery(*program, db, *query, Strategy::kQsq);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(NegationTest, NegationWithFunctionTerms) {
  DatalogContext ctx;
  auto answers = RunQueryStrings(ctx, R"(
    item(a). item(b).
    boxed(f(a)).
    unboxed(X) :- item(X), not boxed(f(X)).
  )",
                                 "unboxed(X)", Strategy::kSemiNaive);
  EXPECT_EQ(answers, (std::vector<std::string>{"b"}));
}

TEST(NegationTest, RemarkFourNotCausalViaNegation) {
  // Paper Remark 4: causal and notCausal are complements. On a FIXED
  // (pre-materialized) unfolding, notCausal can be computed by stratified
  // negation from causal; the paper's encoding cannot, because node
  // creation depends on notCausal (only locally stratified). We verify the
  // complement relationship on materialized data.
  DatalogContext ctx;
  auto answers = RunQueryStrings(ctx, R"(
    % A fixed little causal order: e1 < e2 < e3.
    ev(e1). ev(e2). ev(e3).
    parent(e2, e1). parent(e3, e2).
    causal(X, X) :- ev(X).
    causal(X, Y) :- parent(X, Z), causal(Z, Y).
    notcausal(X, Y) :- ev(X), ev(Y), not causal(X, Y).
  )",
                                 "notcausal(X, Y)", Strategy::kSemiNaive);
  EXPECT_EQ(answers,
            (std::vector<std::string>{"e1,e2", "e1,e3", "e2,e3"}));
}

}  // namespace
}  // namespace dqsq
