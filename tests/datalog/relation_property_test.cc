// Randomized differential test: the columnar Relation against a trivially
// correct row-major reference (linear scans over a vector of tuples).
// Seeded and deterministic; every seed mixes inserts, membership checks
// and windowed probes under random masks. Covers the degenerate arities —
// 0 (one possible tuple) and above 32 (mask bits cannot address every
// column) — alongside the common small ones.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "datalog/relation.h"

namespace dqsq {
namespace {

// Reference implementation: insertion-ordered rows, linear everything.
class ReferenceRelation {
 public:
  explicit ReferenceRelation(uint32_t arity) : arity_(arity) {}

  bool Insert(const Tuple& tuple) {
    for (const Tuple& row : rows_) {
      if (row == tuple) return false;
    }
    rows_.push_back(tuple);
    return true;
  }

  bool Contains(const Tuple& tuple) const {
    for (const Tuple& row : rows_) {
      if (row == tuple) return true;
    }
    return false;
  }

  size_t size() const { return rows_.size(); }
  const Tuple& Row(size_t i) const { return rows_[i]; }

  /// Ascending row ids in [lo, hi) whose mask-selected columns equal `key`.
  std::vector<uint32_t> Probe(uint32_t mask, const std::vector<TermId>& key,
                              uint32_t lo, uint32_t hi) const {
    std::vector<uint32_t> out;
    uint32_t end = hi < rows_.size() ? hi : static_cast<uint32_t>(rows_.size());
    for (uint32_t row = lo; row < end; ++row) {
      size_t k = 0;
      bool match = true;
      for (uint32_t c = 0; c < arity_ && c < 32; ++c) {
        if ((mask & (1u << c)) == 0) continue;
        if (rows_[row][c] != key[k++]) {
          match = false;
          break;
        }
      }
      if (match) out.push_back(row);
    }
    return out;
  }

 private:
  uint32_t arity_;
  std::vector<Tuple> rows_;
};

Tuple RandomTuple(Rng& rng, uint32_t arity, uint64_t domain) {
  Tuple t(arity);
  for (uint32_t c = 0; c < arity; ++c) {
    t[c] = static_cast<TermId>(rng.NextBelow(domain));
  }
  return t;
}

// One seeded run: interleaved inserts / membership checks / probes, with
// every observable result compared against the reference.
void RunCase(uint64_t seed, uint32_t arity, uint64_t domain, size_t ops) {
  Rng rng(seed * 1000003 + arity);
  Relation columnar(arity);
  ReferenceRelation reference(arity);
  std::vector<uint32_t> scratch;
  const uint32_t maskable = arity < 32 ? arity : 32;
  for (size_t op = 0; op < ops; ++op) {
    switch (rng.NextBelow(4)) {
      case 0:
      case 1: {  // insert (weighted: keep the relation growing)
        Tuple t = RandomTuple(rng, arity, domain);
        ASSERT_EQ(columnar.Insert(t), reference.Insert(t))
            << "seed=" << seed << " op=" << op;
        break;
      }
      case 2: {  // membership (random tuple: hits and misses)
        Tuple t = RandomTuple(rng, arity, domain);
        ASSERT_EQ(columnar.Contains(t), reference.Contains(t))
            << "seed=" << seed << " op=" << op;
        break;
      }
      default: {  // windowed probe under a random mask
        uint32_t mask = maskable == 0
                            ? 0
                            : static_cast<uint32_t>(rng.Next()) &
                                  ((maskable == 32 ? 0u : (1u << maskable)) - 1);
        std::vector<TermId> key;
        for (uint32_t m = mask; m != 0; m &= m - 1) {
          key.push_back(static_cast<TermId>(rng.NextBelow(domain)));
        }
        uint32_t n = static_cast<uint32_t>(reference.size());
        uint32_t lo = n == 0 ? 0 : static_cast<uint32_t>(rng.NextBelow(n + 1));
        uint32_t hi = rng.NextBool(0.3)
                          ? Relation::kNoRowLimit
                          : lo + static_cast<uint32_t>(rng.NextBelow(n + 1));
        std::span<const uint32_t> got =
            columnar.Probe(mask, key, scratch, lo, hi);
        std::vector<uint32_t> want = reference.Probe(mask, key, lo, hi);
        ASSERT_EQ(std::vector<uint32_t>(got.begin(), got.end()), want)
            << "seed=" << seed << " op=" << op << " mask=" << mask
            << " lo=" << lo << " hi=" << hi;
        break;
      }
    }
  }
  // Final state: same rows in the same order.
  ASSERT_EQ(columnar.size(), reference.size()) << "seed=" << seed;
  for (size_t i = 0; i < reference.size(); ++i) {
    std::span<const TermId> row = columnar.Row(i);
    ASSERT_EQ(Tuple(row.begin(), row.end()), reference.Row(i))
        << "seed=" << seed << " row=" << i;
    for (uint32_t c = 0; c < arity; ++c) {
      ASSERT_EQ(columnar.At(i, c), reference.Row(i)[c]);
    }
  }
}

TEST(RelationPropertyTest, MatchesReferenceAcrossSeedsSmallArity) {
  // Tight domain: plenty of duplicate inserts and multi-row probe results.
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    RunCase(seed, /*arity=*/2, /*domain=*/5, /*ops=*/400);
  }
}

TEST(RelationPropertyTest, MatchesReferenceAcrossSeedsMidArity) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    RunCase(seed, /*arity=*/4, /*domain=*/3, /*ops=*/300);
  }
}

TEST(RelationPropertyTest, ZeroArityRelationBehaves) {
  // Arity 0 admits exactly one tuple; every operation must still agree.
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    RunCase(seed, /*arity=*/0, /*domain=*/1, /*ops=*/50);
  }
  Relation r(0);
  Tuple empty;
  EXPECT_FALSE(r.Contains(empty));
  EXPECT_TRUE(r.Insert(empty));
  EXPECT_FALSE(r.Insert(empty));
  EXPECT_TRUE(r.Contains(empty));
  EXPECT_EQ(r.size(), 1u);
  std::vector<uint32_t> scratch;
  auto rows = r.Probe(/*mask=*/0, {}, scratch);
  EXPECT_EQ(std::vector<uint32_t>(rows.begin(), rows.end()),
            (std::vector<uint32_t>{0}));
}

TEST(RelationPropertyTest, HighArityBeyondMaskWidthBehaves) {
  // Arity 40: columns past bit 31 exist but cannot be named by a probe
  // mask; inserts, dedup and probes over the low columns must still agree.
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    RunCase(seed, /*arity=*/40, /*domain=*/2, /*ops=*/150);
  }
}

}  // namespace
}  // namespace dqsq
