#include "datalog/relation.h"

#include <gtest/gtest.h>

namespace dqsq {
namespace {

TEST(RelationTest, InsertDeduplicates) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert(std::vector<TermId>{1, 2}));
  EXPECT_FALSE(rel.Insert(std::vector<TermId>{1, 2}));
  EXPECT_TRUE(rel.Insert(std::vector<TermId>{2, 1}));
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_TRUE(rel.Contains(std::vector<TermId>{1, 2}));
  EXPECT_FALSE(rel.Contains(std::vector<TermId>{9, 9}));
}

TEST(RelationTest, RowsKeepInsertionOrder) {
  Relation rel(1);
  for (TermId t = 10; t < 20; ++t) rel.Insert(std::vector<TermId>{t});
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(rel.Row(i)[0], static_cast<TermId>(10 + i));
  }
}

TEST(RelationTest, ZeroArityRelationHoldsOneTuple) {
  Relation rel(0);
  EXPECT_EQ(rel.size(), 0u);
  EXPECT_FALSE(rel.Contains({}));
  EXPECT_TRUE(rel.Insert({}));
  EXPECT_FALSE(rel.Insert({}));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains({}));
  EXPECT_TRUE(rel.Row(0).empty());
}

TEST(RelationTest, ProbeByMask) {
  Relation rel(2);
  rel.Insert(std::vector<TermId>{1, 10});
  rel.Insert(std::vector<TermId>{1, 11});
  rel.Insert(std::vector<TermId>{2, 10});
  // Index on column 0.
  auto& rows = rel.Probe(0b01, std::vector<TermId>{1});
  EXPECT_EQ(rows.size(), 2u);
  auto& rows2 = rel.Probe(0b10, std::vector<TermId>{10});
  EXPECT_EQ(rows2.size(), 2u);
  auto& rows3 = rel.Probe(0b11, std::vector<TermId>{2, 10});
  ASSERT_EQ(rows3.size(), 1u);
  EXPECT_EQ(rows3[0], 2u);
  auto& none = rel.Probe(0b01, std::vector<TermId>{7});
  EXPECT_TRUE(none.empty());
}

TEST(RelationTest, IndicesStayCurrentAcrossInserts) {
  Relation rel(2);
  rel.Insert(std::vector<TermId>{1, 10});
  // Build the index, then insert more rows.
  EXPECT_EQ(rel.Probe(0b01, std::vector<TermId>{1}).size(), 1u);
  rel.Insert(std::vector<TermId>{1, 11});
  rel.Insert(std::vector<TermId>{1, 12});
  EXPECT_EQ(rel.Probe(0b01, std::vector<TermId>{1}).size(), 3u);
  EXPECT_EQ(rel.num_indices(), 1u);
}

TEST(RelationTest, ManyTuplesStressDedup) {
  Relation rel(2);
  for (TermId a = 0; a < 50; ++a) {
    for (TermId b = 0; b < 50; ++b) {
      EXPECT_TRUE(rel.Insert(std::vector<TermId>{a, b}));
    }
  }
  EXPECT_EQ(rel.size(), 2500u);
  for (TermId a = 0; a < 50; ++a) {
    EXPECT_FALSE(rel.Insert(std::vector<TermId>{a, a}));
  }
}

}  // namespace
}  // namespace dqsq
