#include "datalog/relation.h"

#include <gtest/gtest.h>

#include <vector>

namespace dqsq {
namespace {

TEST(RelationTest, InsertDeduplicates) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert(std::vector<TermId>{1, 2}));
  EXPECT_FALSE(rel.Insert(std::vector<TermId>{1, 2}));
  EXPECT_TRUE(rel.Insert(std::vector<TermId>{2, 1}));
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_TRUE(rel.Contains(std::vector<TermId>{1, 2}));
  EXPECT_FALSE(rel.Contains(std::vector<TermId>{9, 9}));
}

TEST(RelationTest, RowsKeepInsertionOrder) {
  Relation rel(1);
  for (TermId t = 10; t < 20; ++t) rel.Insert(std::vector<TermId>{t});
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(rel.Row(i)[0], static_cast<TermId>(10 + i));
  }
}

TEST(RelationTest, ZeroArityRelationHoldsOneTuple) {
  Relation rel(0);
  EXPECT_EQ(rel.size(), 0u);
  EXPECT_FALSE(rel.Contains({}));
  EXPECT_TRUE(rel.Insert({}));
  EXPECT_FALSE(rel.Insert({}));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains({}));
  EXPECT_TRUE(rel.Row(0).empty());
}

TEST(RelationTest, ColumnarAccessorsMirrorRows) {
  Relation rel(3);
  rel.Insert(std::vector<TermId>{1, 2, 3});
  rel.Insert(std::vector<TermId>{4, 5, 6});
  EXPECT_EQ(rel.At(0, 0), 1u);
  EXPECT_EQ(rel.At(1, 2), 6u);
  ASSERT_EQ(rel.Column(1).size(), 2u);
  EXPECT_EQ(rel.Column(1)[0], 2u);
  EXPECT_EQ(rel.Column(1)[1], 5u);
  for (size_t i = 0; i < rel.size(); ++i) {
    for (uint32_t c = 0; c < rel.arity(); ++c) {
      EXPECT_EQ(rel.Row(i)[c], rel.At(i, c));
    }
  }
}

TEST(RelationTest, ProbeByMask) {
  Relation rel(2);
  rel.Insert(std::vector<TermId>{1, 10});
  rel.Insert(std::vector<TermId>{1, 11});
  rel.Insert(std::vector<TermId>{2, 10});
  std::vector<uint32_t> scratch;
  // Index on column 0.
  auto rows = rel.Probe(0b01, std::vector<TermId>{1}, scratch);
  EXPECT_EQ(rows.size(), 2u);
  auto rows2 = rel.Probe(0b10, std::vector<TermId>{10}, scratch);
  EXPECT_EQ(rows2.size(), 2u);
  auto rows3 = rel.Probe(0b11, std::vector<TermId>{2, 10}, scratch);
  ASSERT_EQ(rows3.size(), 1u);
  EXPECT_EQ(rows3[0], 2u);
  auto none = rel.Probe(0b01, std::vector<TermId>{7}, scratch);
  EXPECT_TRUE(none.empty());
}

TEST(RelationTest, ProbeHonorsRowRange) {
  Relation rel(2);
  for (TermId b = 0; b < 10; ++b) rel.Insert(std::vector<TermId>{1, b});
  std::vector<uint32_t> scratch;
  auto all = rel.Probe(0b01, std::vector<TermId>{1}, scratch);
  EXPECT_EQ(all.size(), 10u);
  auto window = rel.Probe(0b01, std::vector<TermId>{1}, scratch, 3, 7);
  ASSERT_EQ(window.size(), 4u);
  for (size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i], 3u + i);
  }
  auto empty = rel.Probe(0b01, std::vector<TermId>{1}, scratch, 10, 20);
  EXPECT_TRUE(empty.empty());
}

TEST(RelationTest, IndicesStayCurrentAcrossInserts) {
  Relation rel(2);
  rel.Insert(std::vector<TermId>{1, 10});
  std::vector<uint32_t> scratch;
  // Build the index, then insert more rows.
  EXPECT_EQ(rel.Probe(0b01, std::vector<TermId>{1}, scratch).size(), 1u);
  rel.Insert(std::vector<TermId>{1, 11});
  rel.Insert(std::vector<TermId>{1, 12});
  EXPECT_EQ(rel.Probe(0b01, std::vector<TermId>{1}, scratch).size(), 3u);
  EXPECT_EQ(rel.num_indices(), 1u);
}

// Regression for the dangling-probe bug: the old implementation returned a
// reference into the index, which an Insert (and the index growth it
// triggers) could reallocate. The span now views the caller's scratch and
// must stay valid and unchanged across arbitrary later inserts.
TEST(RelationTest, ProbeResultSurvivesInsertsAndIndexGrowth) {
  Relation rel(2);
  for (TermId b = 0; b < 8; ++b) rel.Insert(std::vector<TermId>{1, b});
  std::vector<uint32_t> scratch;
  auto rows = rel.Probe(0b01, std::vector<TermId>{1}, scratch);
  ASSERT_EQ(rows.size(), 8u);
  // Grow the relation enough to force index slot-table and chunk-pool
  // reallocation while the probe result is still live.
  for (TermId a = 2; a < 200; ++a) {
    for (TermId b = 0; b < 4; ++b) rel.Insert(std::vector<TermId>{a, b});
  }
  rel.Insert(std::vector<TermId>{1, 100});
  ASSERT_EQ(rows.size(), 8u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i], static_cast<uint32_t>(i));
    EXPECT_EQ(rel.Row(rows[i])[1], static_cast<TermId>(i));
  }
  // A fresh probe sees the newly inserted row.
  std::vector<uint32_t> scratch2;
  EXPECT_EQ(rel.Probe(0b01, std::vector<TermId>{1}, scratch2).size(), 9u);
}

TEST(RelationTest, ProbeRowsAreAscending) {
  Relation rel(2);
  for (TermId a = 0; a < 5; ++a) {
    for (TermId b = 0; b < 20; ++b) rel.Insert(std::vector<TermId>{a, b});
  }
  std::vector<uint32_t> scratch;
  for (TermId a = 0; a < 5; ++a) {
    auto rows = rel.Probe(0b01, std::vector<TermId>{a}, scratch);
    ASSERT_EQ(rows.size(), 20u);
    for (size_t i = 1; i < rows.size(); ++i) {
      EXPECT_LT(rows[i - 1], rows[i]);
    }
  }
}

TEST(RelationTest, ReservePreservesContents) {
  Relation rel(2);
  rel.Insert(std::vector<TermId>{1, 2});
  rel.Reserve(1000);
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains(std::vector<TermId>{1, 2}));
  for (TermId b = 0; b < 100; ++b) rel.Insert(std::vector<TermId>{2, b});
  EXPECT_EQ(rel.size(), 101u);
}

TEST(RelationTest, ManyTuplesStressDedup) {
  Relation rel(2);
  for (TermId a = 0; a < 50; ++a) {
    for (TermId b = 0; b < 50; ++b) {
      EXPECT_TRUE(rel.Insert(std::vector<TermId>{a, b}));
    }
  }
  EXPECT_EQ(rel.size(), 2500u);
  for (TermId a = 0; a < 50; ++a) {
    EXPECT_FALSE(rel.Insert(std::vector<TermId>{a, a}));
  }
}

}  // namespace
}  // namespace dqsq
