#include "datalog/database.h"

#include <gtest/gtest.h>

namespace dqsq {
namespace {

TEST(DatabaseTest, InsertByNameAndDump) {
  DatalogContext ctx;
  Database db(&ctx);
  db.InsertByName("edge", {"a", "b"});
  db.InsertByName("edge", {"b", "c"});
  db.InsertByName("node", {"a"});
  EXPECT_EQ(db.TotalFacts(), 3u);
  EXPECT_EQ(db.Dump(), "edge(a,b)\nedge(b,c)\nnode(a)\n");
}

TEST(DatabaseTest, RelationsKeyedByPeer) {
  DatalogContext ctx;
  Database db(&ctx);
  PredicateId pred = ctx.InternPredicate("r", 1);
  SymbolId p1 = ctx.InternPeer("p1");
  SymbolId p2 = ctx.InternPeer("p2");
  TermId v = ctx.Constant("v");
  db.Insert(RelId{pred, p1}, std::vector<TermId>{v});
  EXPECT_NE(db.Find(RelId{pred, p1}), nullptr);
  EXPECT_EQ(db.Find(RelId{pred, p2}), nullptr);
  db.Insert(RelId{pred, p2}, std::vector<TermId>{v});
  EXPECT_EQ(db.TotalFacts(), 2u);
  EXPECT_EQ(db.Relations().size(), 2u);
}

TEST(DatabaseTest, CountFactsMatching) {
  DatalogContext ctx;
  Database db(&ctx);
  db.InsertByName("trans", {"a"});
  db.InsertByName("trans__bf", {"a"});
  db.InsertByName("transit", {"a"});
  size_t n = db.CountFactsMatching([](const std::string& name) {
    return name == "trans" || name.rfind("trans__", 0) == 0;
  });
  EXPECT_EQ(n, 2u);
}

TEST(DatabaseTest, GetOrCreateIsIdempotent) {
  DatalogContext ctx;
  Database db(&ctx);
  PredicateId pred = ctx.InternPredicate("p", 2);
  RelId rel{pred, ctx.local_peer()};
  Relation& a = db.GetOrCreate(rel);
  a.Insert(std::vector<TermId>{1, 2});
  Relation& b = db.GetOrCreate(rel);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.size(), 1u);
}

}  // namespace
}  // namespace dqsq
