#include "datalog/qsq_rewrite.h"

#include <gtest/gtest.h>

#include "datalog/engine.h"
#include "datalog/magic_rewrite.h"
#include "datalog/parser.h"
#include "tests/test_util.h"

namespace dqsq {
namespace {

using ::dqsq::testing::RunQuery;
using ::dqsq::testing::RunQueryStrings;

// The paper's Figure 3 program (relations a, b, c extensional), with a
// chain EDB where a provides the direct answer and the s/t branch provides
// a second derivation path.
std::string Figure3Program() {
  return R"(
    r@r(X, Y) :- a@r(X, Y).
    r@r(X, Y) :- s@s(X, Z), t@t(Z, Y).
    s@s(X, Y) :- r@r(X, Y), b@s(Y, Z).
    t@t(X, Y) :- c@t(X, Y).
    a@r("1", "2").
    a@r("2", "3").
    a@r("7", "8").
    b@s("2", "5").
    b@s("3", "6").
    c@t("2", "4").
    c@t("3", "9").
  )";
}

TEST(QsqTest, Figure3AllStrategiesAgree) {
  std::vector<std::string> expected;
  for (Strategy strategy :
       {Strategy::kNaive, Strategy::kSemiNaive, Strategy::kMagic,
        Strategy::kQsq, Strategy::kQsqAllVars}) {
    DatalogContext ctx;
    auto answers =
        RunQueryStrings(ctx, Figure3Program(), "r@r(\"1\", Y)", strategy);
    if (expected.empty()) {
      expected = answers;
      EXPECT_FALSE(expected.empty());
    } else {
      EXPECT_EQ(answers, expected) << StrategyName(strategy);
    }
  }
}

TEST(QsqTest, Figure3QsqAnswersAreCorrect) {
  DatalogContext ctx;
  auto answers =
      RunQueryStrings(ctx, Figure3Program(), "r@r(\"1\", Y)", Strategy::kQsq);
  // r("1","2") via a; then s("1","2") needs b("2",_): yes -> s holds
  // ("1","2"); t("2","4") via c => r("1","4") via rule 2. Then s("1","4")?
  // needs b("4",_): no. Fixpoint.
  EXPECT_EQ(answers, (std::vector<std::string>{"2", "4"}));
}

TEST(QsqTest, QsqMaterializesLessThanNaive) {
  DatalogContext big_ctx;
  // A long chain where the query touches only a short prefix: demand-driven
  // evaluation should materialize strictly fewer facts.
  std::string program;
  for (int i = 0; i < 50; ++i) {
    program += "edge(v" + std::to_string(i) + ", v" + std::to_string(i + 1) +
               ").\n";
  }
  program += "path(X, Y) :- edge(X, Y).\n";
  program += "path(X, Y) :- edge(X, Z), path(Z, Y).\n";

  DatalogContext ctx_naive;
  QueryResult naive =
      RunQuery(ctx_naive, program, "path(v45, Y)", Strategy::kSemiNaive);
  DatalogContext ctx_qsq;
  QueryResult qsq = RunQuery(ctx_qsq, program, "path(v45, Y)", Strategy::kQsq);
  EXPECT_EQ(testing::AnswerStrings(naive.answers, ctx_naive),
            testing::AnswerStrings(qsq.answers, ctx_qsq));
  // Naive derives all ~1275 path facts; QSQ only those demanded from v45
  // onward (15 path + 5 edge answers).
  EXPECT_GT(naive.answer_facts, 1000u);
  EXPECT_LE(qsq.answer_facts, 25u);
  EXPECT_LT(qsq.derived_facts, naive.derived_facts / 5);
}

TEST(QsqTest, MagicMaterializesLessThanNaive) {
  std::string program;
  for (int i = 0; i < 50; ++i) {
    program += "edge(v" + std::to_string(i) + ", v" + std::to_string(i + 1) +
               ").\n";
  }
  program += "path(X, Y) :- edge(X, Y).\n";
  program += "path(X, Y) :- edge(X, Z), path(Z, Y).\n";
  DatalogContext ctx;
  QueryResult magic = RunQuery(ctx, program, "path(v45, Y)", Strategy::kMagic);
  EXPECT_EQ(magic.answers.size(), 5u);
  EXPECT_LE(magic.answer_facts, 25u);
}

TEST(QsqTest, SameGenerationQueryAllStrategies) {
  // sg(a,q) directly via flat; sg(a,b) via up(a,e), sg(e,f), down(f,b)
  // where sg(e,f) itself needs one more level of recursion.
  const char* program = R"(
    flat(a, q). flat(m, n).
    up(a, e). up(e, m).
    down(n, f). down(f, b).
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
  )";
  for (Strategy strategy :
       {Strategy::kNaive, Strategy::kSemiNaive, Strategy::kMagic,
        Strategy::kQsq, Strategy::kQsqAllVars}) {
    DatalogContext ctx;
    auto answers = RunQueryStrings(ctx, program, "sg(a, Y)", strategy);
    EXPECT_EQ(answers, (std::vector<std::string>{"b", "q"}))
        << StrategyName(strategy);
  }
}

TEST(QsqTest, RewriteStructureMatchesFigure4) {
  // Figure 4 of the paper: the rewriting of the (local) Figure 3 program
  // introduces, per rule, supplementary relations sup_{i,0..n}, input
  // relations in_R^bf, and adorned answers R^bf.
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    r(X, Y) :- a(X, Y).
    r(X, Y) :- s(X, Z), t(Z, Y).
    s(X, Y) :- r(X, Y), b(Y, Z).
    t(X, Y) :- c(X, Y).
  )",
                              ctx);
  ASSERT_TRUE(program.ok());
  auto q = ParseQuery("r(\"1\", Y)", ctx);
  ASSERT_TRUE(q.ok());
  auto adorned = AdornProgram(*program, q->atom.rel, QueryAdornment(q->atom));
  ASSERT_TRUE(adorned.ok());
  auto rewrite = QsqRewrite(*adorned, q->atom.rel, QueryAdornment(q->atom),
                            ctx, QsqOptions{});
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();

  // Rule counts, following Figure 4: rule 1 (1 EDB atom) contributes
  // 1 (sup0) + 1 (sup1 via EDB) + 1 (answer) = 3; rule 2 (2 IDB atoms)
  // contributes 1 + 2*(in + sup) + 1 = 6; rule 3 (IDB + EDB) contributes
  // 1 + 2 + 1 + 1 = 5; rule 4: 3. Total 17.
  EXPECT_EQ(rewrite->program.rules.size(), 17u);

  // The query's interface relations exist with the right names.
  EXPECT_EQ(ctx.PredicateName(rewrite->answer_rel.pred), "r__bf");
  EXPECT_EQ(ctx.PredicateName(rewrite->input_rel.pred), "in__r__bf");
  EXPECT_EQ(ctx.PredicateArity(rewrite->input_rel.pred), 1u);

  // in relations for all three call patterns (Figure 4's in-R^bf, in-S^bf,
  // in-T^bf).
  PredicateId pred;
  EXPECT_TRUE(ctx.LookupPredicate("in__s__bf", &pred));
  EXPECT_TRUE(ctx.LookupPredicate("in__t__bf", &pred));
  EXPECT_TRUE(ctx.LookupPredicate("s__bf", &pred));
  EXPECT_TRUE(ctx.LookupPredicate("t__bf", &pred));
}

TEST(QsqTest, DistributedPlacementMatchesFigure5) {
  // In the dQSQ placement, sup_{r,j} lives at the peer of body atom j so
  // every rewritten rule reads relations of exactly one peer (Fig. 5: only
  // sup22 and sup32 cross peers, as heads).
  DatalogContext ctx;
  auto program = ParseProgram(Figure3Program(), ctx);
  ASSERT_TRUE(program.ok());
  auto q = ParseQuery("r@r(\"1\", Y)", ctx);
  ASSERT_TRUE(q.ok());
  auto adorned = AdornProgram(*program, q->atom.rel, QueryAdornment(q->atom));
  ASSERT_TRUE(adorned.ok());
  QsqOptions opts;
  opts.distribute_sups = true;
  auto rewrite = QsqRewrite(*adorned, q->atom.rel, QueryAdornment(q->atom),
                            ctx, opts);
  ASSERT_TRUE(rewrite.ok());
  for (const Rule& rule : rewrite->program.rules) {
    ASSERT_FALSE(rule.body.empty());
    SymbolId body_peer = rule.body[0].rel.peer;
    for (const Atom& atom : rule.body) {
      EXPECT_EQ(atom.rel.peer, body_peer)
          << "cross-peer body in " << RuleToString(rule, ctx);
    }
  }
}

TEST(QsqTest, BoundArgumentWithFunctionTermDrivesDemand) {
  // Skolem terms in heads: querying node(f(a)) must demand only f(a), not
  // build unrelated terms.
  DatalogContext ctx;
  auto result = RunQuery(ctx, R"(
    base(a). base(b).
    node(f(X)) :- base(X).
  )",
                         "node(f(a))", Strategy::kQsq);
  EXPECT_EQ(result.answers.size(), 1u);
}

TEST(QsqTest, DisequalityInRewrittenProgram) {
  for (Strategy strategy : {Strategy::kQsq, Strategy::kMagic}) {
    DatalogContext ctx;
    auto answers = RunQueryStrings(ctx, R"(
      edge(a, b). edge(b, a). edge(b, c).
      reach(X, Y) :- edge(X, Y).
      reach(X, Y) :- edge(X, Z), reach(Z, Y), X != Y.
    )",
                                   "reach(a, Y)", strategy);
    DatalogContext ctx2;
    auto expected = RunQueryStrings(ctx2, R"(
      edge(a, b). edge(b, a). edge(b, c).
      reach(X, Y) :- edge(X, Y).
      reach(X, Y) :- edge(X, Z), reach(Z, Y), X != Y.
    )",
                                    "reach(a, Y)", Strategy::kSemiNaive);
    EXPECT_EQ(answers, expected) << StrategyName(strategy);
  }
}

TEST(QsqTest, AllFreeQueryStillWorks) {
  for (Strategy strategy :
       {Strategy::kQsq, Strategy::kMagic, Strategy::kQsqAllVars}) {
    DatalogContext ctx;
    auto answers = RunQueryStrings(ctx, R"(
      edge(a, b). edge(b, c).
      path(X, Y) :- edge(X, Y).
      path(X, Y) :- edge(X, Z), path(Z, Y).
    )",
                                   "path(X, Y)", strategy);
    EXPECT_EQ(answers,
              (std::vector<std::string>{"a,b", "a,c", "b,c"}))
        << StrategyName(strategy);
  }
}

TEST(QsqTest, RepeatedVariableInQuery) {
  DatalogContext ctx;
  auto answers = RunQueryStrings(ctx, R"(
    edge(a, a). edge(a, b). edge(b, b).
    loop(X, Y) :- edge(X, Y).
  )",
                                 "loop(X, X)", Strategy::kQsq);
  EXPECT_EQ(answers, (std::vector<std::string>{"a", "b"}));
}

TEST(QsqTest, QsqTerminatesWhereNaiveDiverges) {
  // With function symbols, bottom-up runs forever but QSQ's demand is
  // finite for this query: the query asks about a specific ground numeral.
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    zero(z).
    num(X) :- zero(X).
    num(s(X)) :- num(X).
  )",
                              ctx);
  ASSERT_TRUE(program.ok());
  auto q = ParseQuery("num(s(s(z)))", ctx);
  ASSERT_TRUE(q.ok());
  Database db(&ctx);
  EvalOptions opts;
  opts.max_facts = 10000;  // would be exhausted by bottom-up
  auto result = SolveQuery(*program, db, *q, Strategy::kQsq, opts);
  // NOTE: demand on num^b unfolds s(s(z)) downward: in__num__b holds
  // s(s(z)), and the rule num(s(X)) :- num(X) with head pattern s(X)
  // matched against the demand binds X = s(z), recursing. Finite.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->answers.size(), 1u);
}

TEST(QsqTest, QsqAllVarsKeepsWiderSupSchemas) {
  // The ablation: without relevant-variable projection the sup relations
  // carry at least as many facts.
  std::string program;
  for (int i = 0; i < 30; ++i) {
    program += "edge(v" + std::to_string(i) + ", v" + std::to_string(i + 1) +
               ").\n";
  }
  program += "path(X, Y) :- edge(X, Y).\n";
  program += "path(X, Y) :- edge(X, Z), path(Z, Y).\n";
  DatalogContext ctx1, ctx2;
  QueryResult slim = RunQuery(ctx1, program, "path(v0, Y)", Strategy::kQsq);
  QueryResult wide =
      RunQuery(ctx2, program, "path(v0, Y)", Strategy::kQsqAllVars);
  EXPECT_EQ(testing::AnswerStrings(slim.answers, ctx1),
            testing::AnswerStrings(wide.answers, ctx2));
  EXPECT_GE(wide.aux_facts, slim.aux_facts);
}

}  // namespace
}  // namespace dqsq
