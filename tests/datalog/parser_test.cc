#include "datalog/parser.h"

#include <gtest/gtest.h>

namespace dqsq {
namespace {

TEST(ParserTest, ParsesFactsAndRules) {
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    % transitive closure
    edge(a, b).
    edge(b, c).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )",
                              ctx);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->rules.size(), 4u);
  EXPECT_TRUE(program->rules[0].IsFact());
  EXPECT_TRUE(program->rules[1].IsFact());
  EXPECT_FALSE(program->rules[2].IsFact());
  EXPECT_EQ(program->rules[3].body.size(), 2u);
  EXPECT_EQ(RuleToString(program->rules[3], ctx),
            "path(X,Y) :- edge(X,Z), path(Z,Y).");
}

TEST(ParserTest, ParsesPeersAndDistribution) {
  DatalogContext ctx;
  // The Figure 3 program of the paper.
  auto program = ParseProgram(R"(
    r@r(X, Y) :- a@r(X, Y).
    r@r(X, Y) :- s@s(X, Z), t@t(Z, Y).
    s@s(X, Y) :- r@r(X, Y), b@s(Y, Z).
    t@t(X, Y) :- c@t(X, Y).
  )",
                              ctx);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->rules.size(), 4u);
  SymbolId peer_r = ctx.symbols().Intern("r");
  SymbolId peer_s = ctx.symbols().Intern("s");
  EXPECT_EQ(program->rules[0].head.rel.peer, peer_r);
  EXPECT_EQ(program->rules[1].body[0].rel.peer, peer_s);
  EXPECT_EQ(RuleToString(program->rules[1], ctx),
            "r@r(X,Y) :- s@s(X,Z), t@t(Z,Y).");
}

TEST(ParserTest, ParsesQuotedConstantsAndFunctionTerms) {
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    q(f(X, "1"), g()) :- base(X).
  )",
                              ctx);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const Rule& rule = program->rules[0];
  ASSERT_EQ(rule.head.args.size(), 2u);
  EXPECT_EQ(rule.head.args[0].kind(), Pattern::Kind::kApp);
  EXPECT_EQ(rule.head.args[1].kind(), Pattern::Kind::kApp);
  EXPECT_EQ(rule.head.args[1].args().size(), 0u);
}

TEST(ParserTest, ParsesDisequalities) {
  DatalogContext ctx;
  auto program = ParseProgram(R"(
    distinct(X, Y) :- node(X), node(Y), X != Y.
    notme(X) :- node(X), X != a.
    alsofine(X) :- node(X), a != X.
  )",
                              ctx);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->rules[0].diseqs.size(), 1u);
  EXPECT_EQ(program->rules[1].diseqs.size(), 1u);
  EXPECT_EQ(program->rules[2].diseqs.size(), 1u);
}

TEST(ParserTest, RejectsNonRangeRestrictedRule) {
  DatalogContext ctx;
  auto program = ParseProgram("head(X, Y) :- body(X).", ctx);
  EXPECT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, RejectsVariablePeer) {
  DatalogContext ctx;
  // Peer names must be constants (paper §3, unlike reference [32]).
  auto program = ParseProgram("a@P(X) :- b(X, P).", ctx);
  EXPECT_FALSE(program.ok());
}

TEST(ParserTest, RejectsSyntaxErrors) {
  DatalogContext ctx;
  EXPECT_FALSE(ParseProgram("p(X) :- q(X)", ctx).ok());   // missing period
  EXPECT_FALSE(ParseProgram("p(X :- q(X).", ctx).ok());   // missing paren
  EXPECT_FALSE(ParseProgram("p(X) : q(X).", ctx).ok());   // bad ':-'
  EXPECT_FALSE(ParseProgram("p(\"unterminated) .", ctx).ok());
  EXPECT_FALSE(ParseProgram("P(x).", ctx).ok());          // var as predicate
}

TEST(ParserTest, QueryAtomCollectsVariables) {
  DatalogContext ctx;
  auto q = ParseQuery("path@r(\"1\", Y)", ctx);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_vars, 1u);
  EXPECT_EQ(q->var_names[0], "Y");
  EXPECT_TRUE(q->atom.args[0].IsGround());
  EXPECT_FALSE(q->atom.args[1].IsGround());
}

TEST(ParserTest, ArityConflictIsRejected) {
  DatalogContext ctx;
  auto p1 = ParseProgram("p(a, b).", ctx);
  ASSERT_TRUE(p1.ok());
  // Same predicate with another arity aborts by design; validated here at
  // parse level by catching the different-arity atom in one program.
  EXPECT_DEATH((void)ParseProgram("p(a).", ctx), "arity");
}

TEST(ParserTest, RoundTripThroughPrinter) {
  DatalogContext ctx;
  const char* text = "path@r(X,Y) :- edge@r(X,Z), path@r(Z,Y), X != Y.";
  auto program = ParseProgram(text, ctx);
  ASSERT_TRUE(program.ok());
  std::string printed = ProgramToString(*program, ctx);
  auto again = ParseProgram(printed, ctx);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(ProgramToString(*again, ctx), printed);
}

}  // namespace
}  // namespace dqsq
