// Shared helpers for the dqsq test suites.
#ifndef DQSQ_TESTS_TEST_UTIL_H_
#define DQSQ_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include "datalog/database.h"
#include "datalog/engine.h"
#include "datalog/parser.h"

namespace dqsq::testing {

/// Renders answer tuples as sorted "a,b" strings for easy comparison.
inline std::vector<std::string> AnswerStrings(const std::vector<Tuple>& answers,
                                              const DatalogContext& ctx) {
  std::vector<std::string> out;
  for (const Tuple& t : answers) {
    std::string s;
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) s += ",";
      s += ctx.arena().ToString(t[i], ctx.symbols());
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Parses `program_text` and `query_text`, runs the query with `strategy`
/// on a fresh database, and returns the result. Aborts on any error (test
/// convenience). Facts are taken from the program text itself.
inline QueryResult RunQuery(DatalogContext& ctx, const std::string& program_text,
                            const std::string& query_text, Strategy strategy,
                            const EvalOptions& options = {}) {
  auto program = ParseProgram(program_text, ctx);
  DQSQ_CHECK_OK(program.status());
  auto query = ParseQuery(query_text, ctx);
  DQSQ_CHECK_OK(query.status());
  Database db(&ctx);
  auto result = SolveQuery(*program, db, *query, strategy, options);
  DQSQ_CHECK_OK(result.status());
  return *std::move(result);
}

/// Answers only, as sorted strings.
inline std::vector<std::string> RunQueryStrings(
    DatalogContext& ctx, const std::string& program_text,
    const std::string& query_text, Strategy strategy,
    const EvalOptions& options = {}) {
  QueryResult r = RunQuery(ctx, program_text, query_text, strategy, options);
  return AnswerStrings(r.answers, ctx);
}

}  // namespace dqsq::testing

#endif  // DQSQ_TESTS_TEST_UTIL_H_
