#include "petri/reference_diagnoser.h"

#include <gtest/gtest.h>

#include "petri/examples.h"

namespace dqsq::petri {
namespace {

class PaperDiagnosisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = MakePaperNet();
    auto u = Unfolding::Build(net_, UnfoldOptions{});
    ASSERT_TRUE(u.ok());
    u_ = std::make_unique<Unfolding>(*std::move(u));
  }

  std::vector<std::vector<std::string>> Explain(const AlarmSequence& a,
                                                ReferenceOptions opts = {}) {
    auto result = ReferenceDiagnose(*u_, a, opts);
    DQSQ_CHECK_OK(result.status());
    std::vector<std::vector<std::string>> out;
    for (const Configuration& c : result->explanations) {
      std::vector<std::string> names;
      for (EventId e : c) {
        names.push_back(net_.transition(u_->event(e).transition).name);
      }
      std::sort(names.begin(), names.end());
      out.push_back(std::move(names));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  PetriNet net_;
  std::unique_ptr<Unfolding> u_;
};

TEST_F(PaperDiagnosisTest, PaperSequenceHasTheShadedExplanation) {
  // Paper §2: (b,p1)(a,p2)(c,p1) is explained by the shaded configuration
  // {i, ii, iii}.
  auto explanations =
      Explain(MakeAlarms({{"b", "p1"}, {"a", "p2"}, {"c", "p1"}}));
  ASSERT_EQ(explanations.size(), 1u);
  EXPECT_EQ(explanations[0],
            (std::vector<std::string>{"i", "ii", "iii"}));
}

TEST_F(PaperDiagnosisTest, ReorderedCrossPeerAlarmsSameExplanation) {
  // Paper §2: the same configuration also explains (b,p1)(c,p1)(a,p2).
  auto explanations =
      Explain(MakeAlarms({{"b", "p1"}, {"c", "p1"}, {"a", "p2"}}));
  ASSERT_EQ(explanations.size(), 1u);
  EXPECT_EQ(explanations[0],
            (std::vector<std::string>{"i", "ii", "iii"}));
}

TEST_F(PaperDiagnosisTest, ContradictingPerPeerOrderHasNoExplanation) {
  // Paper §2: (c,p1)(b,p1)(a,p2) is NOT explained — c precedes b at p1 but
  // every c-event at p1 is caused by the b-event.
  auto explanations =
      Explain(MakeAlarms({{"c", "p1"}, {"b", "p1"}, {"a", "p2"}}));
  EXPECT_TRUE(explanations.empty());
}

TEST_F(PaperDiagnosisTest, AmbiguousObservationYieldsMultipleExplanations) {
  // (b,p2): only v. (c,p2): only iv, which needs ii — not matched. So
  // (b,p2) alone: {v}.
  auto explanations = Explain(MakeAlarms({{"b", "p2"}}));
  ASSERT_EQ(explanations.size(), 1u);
  EXPECT_EQ(explanations[0], (std::vector<std::string>{"v"}));
}

TEST_F(PaperDiagnosisTest, EmptyObservationHasEmptyExplanation) {
  auto explanations = Explain({});
  ASSERT_EQ(explanations.size(), 1u);
  EXPECT_TRUE(explanations[0].empty());
}

TEST_F(PaperDiagnosisTest, UnknownPeerAlarmsYieldNothing) {
  auto explanations = Explain(MakeAlarms({{"b", "p9"}}));
  EXPECT_TRUE(explanations.empty());
}

TEST_F(PaperDiagnosisTest, UnmatchableSymbolYieldsNothing) {
  auto explanations = Explain(MakeAlarms({{"z", "p1"}}));
  EXPECT_TRUE(explanations.empty());
}

TEST_F(PaperDiagnosisTest, StepBudgetIsEnforced) {
  ReferenceOptions opts;
  opts.max_steps = 2;
  auto result = ReferenceDiagnose(
      *u_, MakeAlarms({{"b", "p1"}, {"a", "p2"}, {"c", "p1"}}), opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(ReferenceDiagnoserHiddenTest, HiddenTransitionsExtendExplanations) {
  // A net where an unobservable transition must fire between two observed
  // alarms: s0 -[a]-> s1 -[hidden h]-> s2 -[b]-> s3.
  PetriNet net;
  PeerIndex p = net.AddPeer("p");
  PlaceId s0 = net.AddPlace("s0", p);
  PlaceId s1 = net.AddPlace("s1", p);
  PlaceId s2 = net.AddPlace("s2", p);
  PlaceId s3 = net.AddPlace("s3", p);
  net.AddTransition("ta", p, "a", {s0}, {s1}, /*observable=*/true);
  net.AddTransition("th", p, "h", {s1}, {s2}, /*observable=*/false);
  net.AddTransition("tb", p, "b", {s2}, {s3}, /*observable=*/true);
  net.SetInitialMarking({s0});
  auto u = Unfolding::Build(net, UnfoldOptions{});
  ASSERT_TRUE(u.ok());

  AlarmSequence alarms = MakeAlarms({{"a", "p"}, {"b", "p"}});
  // Without hidden support: no explanation (tb unreachable by observables).
  ReferenceOptions strict;
  auto none = ReferenceDiagnose(*u, alarms, strict);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->explanations.empty());

  // With hidden support: {ta, th, tb}.
  ReferenceOptions hidden;
  hidden.allow_unobservable = true;
  auto some = ReferenceDiagnose(*u, alarms, hidden);
  ASSERT_TRUE(some.ok());
  ASSERT_EQ(some->explanations.size(), 1u);
  EXPECT_EQ(some->explanations[0].size(), 3u);
}

}  // namespace
}  // namespace dqsq::petri
