#include "petri/verifier.h"

#include <gtest/gtest.h>

#include "petri/net.h"

namespace dqsq::petri {
namespace {

/// The named regression fixture: a 3-place single-peer net that is NOT
/// diagnosable. From p0 the left copy can fire the unobservable fault f
/// into p1 and loop the observable a1 ("a") forever; the fault-free right
/// copy mirrors every "a" by firing u into p2 and looping a2 ("a") — the
/// two runs are observationally identical, so the fault is never certain.
PetriNet MakeUndiagnosableLoopNet() {
  PetriNet net;
  PeerIndex p = net.AddPeer("peer0");
  PlaceId p0 = net.AddPlace("p0", p);
  PlaceId p1 = net.AddPlace("p1", p);
  PlaceId p2 = net.AddPlace("p2", p);
  net.AddTransition("f", p, "silent", {p0}, {p1}, /*observable=*/false,
                    /*fault=*/true);
  net.AddTransition("u", p, "silent", {p0}, {p2}, /*observable=*/false);
  net.AddTransition("a1", p, "a", {p1}, {p1}, /*observable=*/true);
  net.AddTransition("a2", p, "a", {p2}, {p2}, /*observable=*/true);
  net.SetInitialMarking({p0});
  return net;
}

/// The diagnosable twin of the fixture: the post-fault loop rings "b"
/// while the fault-free loop rings "a", so one observation separates the
/// faulty run from every fault-free run.
PetriNet MakeDiagnosableLoopNet() {
  PetriNet net;
  PeerIndex p = net.AddPeer("peer0");
  PlaceId p0 = net.AddPlace("p0", p);
  PlaceId p1 = net.AddPlace("p1", p);
  PlaceId p2 = net.AddPlace("p2", p);
  net.AddTransition("f", p, "silent", {p0}, {p1}, /*observable=*/false,
                    /*fault=*/true);
  net.AddTransition("u", p, "silent", {p0}, {p2}, /*observable=*/false);
  net.AddTransition("b1", p, "b", {p1}, {p1}, /*observable=*/true);
  net.AddTransition("a2", p, "a", {p2}, {p2}, /*observable=*/true);
  net.SetInitialMarking({p0});
  return net;
}

TEST(VerifierNetTest, BuildsTwinGraphOfUndiagnosableFixture) {
  PetriNet net = MakeUndiagnosableLoopNet();
  auto verifier = VerifierNet::Build(net);
  ASSERT_TRUE(verifier.ok()) << verifier.status().ToString();

  // Initial state: both copies at p0, no fault.
  const VerifierState& init = verifier->state(verifier->initial_state());
  EXPECT_EQ(init.left, net.initial_marking());
  EXPECT_EQ(init.right, net.initial_marking());
  EXPECT_FALSE(init.fault);
  EXPECT_FALSE(verifier->ambiguous(verifier->initial_state()));

  // The fault is reachable, so ambiguous states exist; and the observable
  // loop gives the ambiguous region a sync edge.
  bool any_ambiguous = false;
  bool ambiguous_sync_edge = false;
  for (uint32_t s = 0; s < verifier->num_states(); ++s) {
    if (verifier->ambiguous(s)) any_ambiguous = true;
  }
  for (const VerifierEdge& e : verifier->edges()) {
    if (verifier->ambiguous(e.from) && e.move == VerifierMove::kSync) {
      ambiguous_sync_edge = true;
      EXPECT_TRUE(e.AdvancesFaultyCopy());
    }
  }
  EXPECT_TRUE(any_ambiguous);
  EXPECT_TRUE(ambiguous_sync_edge);
}

TEST(VerifierNetTest, FaultFlagIsMonotoneAlongEdges) {
  PetriNet net = MakeUndiagnosableLoopNet();
  auto verifier = VerifierNet::Build(net);
  ASSERT_TRUE(verifier.ok());
  for (const VerifierEdge& e : verifier->edges()) {
    if (verifier->ambiguous(e.from)) {
      EXPECT_TRUE(verifier->ambiguous(e.to))
          << "fault flag dropped on edge " << e.from << " -> " << e.to;
    }
  }
}

TEST(VerifierNetTest, RightSoloNeverFiresFaults) {
  PetriNet net = MakeUndiagnosableLoopNet();
  auto verifier = VerifierNet::Build(net);
  ASSERT_TRUE(verifier.ok());
  for (const VerifierEdge& e : verifier->edges()) {
    if (e.move == VerifierMove::kRight) {
      EXPECT_FALSE(net.transition(e.right).fault);
      EXPECT_FALSE(net.transition(e.right).observable);
    }
    if (e.move == VerifierMove::kSync) {
      const Transition& tl = net.transition(e.left);
      const Transition& tr = net.transition(e.right);
      EXPECT_FALSE(tr.fault);
      EXPECT_EQ(tl.peer, tr.peer);
      EXPECT_EQ(tl.alarm, tr.alarm);
      EXPECT_EQ(e.peer, tl.peer);
    }
  }
}

TEST(VerifierNetTest, ExtractedWitnessReplays) {
  PetriNet net = MakeUndiagnosableLoopNet();
  auto verifier = VerifierNet::Build(net);
  ASSERT_TRUE(verifier.ok());
  // Find an ambiguous state with a fault-advancing cycle by trying every
  // ambiguous anchor.
  bool found = false;
  for (uint32_t s = 0; s < verifier->num_states() && !found; ++s) {
    if (!verifier->ambiguous(s)) continue;
    auto witness = verifier->ExtractWitness(s);
    if (!witness.ok()) continue;
    found = true;
    EXPECT_EQ(witness->anchor, s);
    EXPECT_FALSE(witness->cycle.empty());
    Status replay = ReplayWitness(net, *witness);
    EXPECT_TRUE(replay.ok()) << replay.ToString();
  }
  EXPECT_TRUE(found);
}

TEST(VerifierNetTest, DiagnosableTwinHasNoAmbiguousCycle) {
  PetriNet net = MakeDiagnosableLoopNet();
  auto verifier = VerifierNet::Build(net);
  ASSERT_TRUE(verifier.ok());
  for (uint32_t s = 0; s < verifier->num_states(); ++s) {
    if (!verifier->ambiguous(s)) continue;
    auto witness = verifier->ExtractWitness(s);
    EXPECT_FALSE(witness.ok())
        << "unexpected ambiguous cycle at " << VerifierNet::StateName(s);
  }
}

TEST(VerifierNetTest, ZeroFaultNetHasNoAmbiguousStates) {
  PetriNet net = MakeUndiagnosableLoopNet();
  PetriNet clean;
  PeerIndex p = clean.AddPeer("peer0");
  PlaceId p0 = clean.AddPlace("p0", p);
  PlaceId p1 = clean.AddPlace("p1", p);
  clean.AddTransition("t", p, "a", {p0}, {p1}, /*observable=*/true);
  clean.AddTransition("back", p, "b", {p1}, {p0}, /*observable=*/true);
  clean.SetInitialMarking({p0});
  auto verifier = VerifierNet::Build(clean);
  ASSERT_TRUE(verifier.ok());
  EXPECT_GT(verifier->num_states(), 1u);
  for (uint32_t s = 0; s < verifier->num_states(); ++s) {
    EXPECT_FALSE(verifier->ambiguous(s));
  }
  (void)net;
}

TEST(VerifierNetTest, StateNamesRoundTrip) {
  PetriNet net = MakeUndiagnosableLoopNet();
  auto verifier = VerifierNet::Build(net);
  ASSERT_TRUE(verifier.ok());
  for (uint32_t s = 0; s < verifier->num_states(); ++s) {
    EXPECT_EQ(verifier->FindState(VerifierNet::StateName(s)), s);
  }
  EXPECT_EQ(verifier->FindState("v999999"), kInvalidId);
  EXPECT_EQ(verifier->FindState("x0"), kInvalidId);
  EXPECT_EQ(verifier->FindState("v"), kInvalidId);
  EXPECT_EQ(verifier->FindState("v1x"), kInvalidId);
}

TEST(VerifierNetTest, StateBudgetIsEnforced) {
  PetriNet net = MakeUndiagnosableLoopNet();
  VerifierOptions options;
  options.max_states = 2;
  auto verifier = VerifierNet::Build(net, options);
  ASSERT_FALSE(verifier.ok());
  EXPECT_EQ(verifier.status().code(), StatusCode::kResourceExhausted);
}

TEST(VerifierNetTest, ToStringSummarizes) {
  PetriNet net = MakeUndiagnosableLoopNet();
  auto verifier = VerifierNet::Build(net);
  ASSERT_TRUE(verifier.ok());
  std::string summary = verifier->ToString();
  EXPECT_NE(summary.find("VerifierNet{states="), std::string::npos);
  EXPECT_NE(summary.find("ambiguous="), std::string::npos);
}

TEST(ReplayWitnessTest, RejectsCorruptedWitnesses) {
  PetriNet net = MakeUndiagnosableLoopNet();
  auto verifier = VerifierNet::Build(net);
  ASSERT_TRUE(verifier.ok());
  AmbiguousWitness good;
  for (uint32_t s = 0; s < verifier->num_states(); ++s) {
    if (!verifier->ambiguous(s)) continue;
    auto witness = verifier->ExtractWitness(s);
    if (witness.ok()) {
      good = *witness;
      break;
    }
  }
  ASSERT_FALSE(good.cycle.empty());

  AmbiguousWitness empty_cycle = good;
  empty_cycle.cycle.clear();
  EXPECT_FALSE(ReplayWitness(net, empty_cycle).ok());

  AmbiguousWitness no_fault = good;
  no_fault.prefix.clear();  // anchor no longer ambiguous
  EXPECT_FALSE(ReplayWitness(net, no_fault).ok());
}

}  // namespace
}  // namespace dqsq::petri
