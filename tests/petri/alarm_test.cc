#include "petri/alarm.h"

#include <gtest/gtest.h>

#include "petri/examples.h"
#include "petri/random_net.h"

namespace dqsq::petri {
namespace {

TEST(AlarmTest, ToStringAndSplit) {
  AlarmSequence a =
      MakeAlarms({{"b", "p1"}, {"a", "p2"}, {"c", "p1"}});
  EXPECT_EQ(AlarmSequenceToString(a), "(b,p1)(a,p2)(c,p1)");
  auto split = SplitByPeer(a);
  EXPECT_EQ(split["p1"], (std::vector<std::string>{"b", "c"}));
  EXPECT_EQ(split["p2"], (std::vector<std::string>{"a"}));
}

TEST(AlarmTest, GeneratedRunFollowsTokenGame) {
  PetriNet net = MakePaperNet(/*with_loop=*/true);
  Rng rng(17);
  auto run = GenerateRun(net, 6, rng);
  ASSERT_TRUE(run.ok());
  // Replay the firing sequence to confirm it is a legal run.
  Marking m = net.initial_marking();
  for (TransitionId t : run->firing_sequence) {
    auto next = net.Fire(m, t);
    ASSERT_TRUE(next.ok());
    m = *std::move(next);
  }
}

TEST(AlarmTest, ObservationPreservesPerPeerOrder) {
  PetriNet net = MakePaperNet(/*with_loop=*/true);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    auto run = GenerateRun(net, 8, rng);
    ASSERT_TRUE(run.ok());
    // Per-peer projection of the observation equals the per-peer emission
    // order of the run.
    std::map<std::string, std::vector<std::string>> emitted;
    for (TransitionId t : run->firing_sequence) {
      const Transition& tr = net.transition(t);
      if (tr.observable) {
        emitted[net.peer_name(tr.peer)].push_back(tr.alarm);
      }
    }
    EXPECT_EQ(SplitByPeer(run->observation), emitted) << "seed " << seed;
  }
}

TEST(AlarmTest, HiddenTransitionsAreNotObserved) {
  Rng net_rng(5);
  RandomNetOptions opts;
  opts.num_peers = 2;
  opts.hidden_probability = 1.0;  // every transition hidden
  PetriNet net = MakeRandomNet(opts, net_rng);
  Rng rng(6);
  auto run = GenerateRun(net, 10, rng);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->firing_sequence.empty());
  EXPECT_TRUE(run->observation.empty());
}

TEST(AlarmTest, DeterministicForSeed) {
  PetriNet net = MakePaperNet(true);
  Rng rng1(99), rng2(99);
  auto r1 = GenerateRun(net, 10, rng1);
  auto r2 = GenerateRun(net, 10, rng2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->firing_sequence, r2->firing_sequence);
  EXPECT_TRUE(r1->observation == r2->observation);
}

}  // namespace
}  // namespace dqsq::petri
