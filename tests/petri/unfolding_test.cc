#include "petri/unfolding.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "petri/examples.h"
#include "petri/random_net.h"

namespace dqsq::petri {
namespace {

// Finds the unique event with the given transition name; fails if absent
// or ambiguous.
EventId EventByName(const Unfolding& u, const std::string& name) {
  EventId found = kInvalidId;
  for (EventId e = 0; e < u.num_events(); ++e) {
    if (u.net().transition(u.event(e).transition).name == name) {
      EXPECT_EQ(found, kInvalidId) << "ambiguous event " << name;
      found = e;
    }
  }
  EXPECT_NE(found, kInvalidId) << "no event " << name;
  return found;
}

TEST(UnfoldingTest, PaperNetUnfoldsCompletely) {
  // Without the loop the paper net's unfolding is finite: each transition
  // occurs at most twice (iii can re-enable i? no: place 7 is never
  // reproduced, so i fires once; iii once; ii, iv, v once each).
  PetriNet net = MakePaperNet();
  auto u = Unfolding::Build(net, UnfoldOptions{});
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  EXPECT_TRUE(u->complete());
  // Events: i, ii, iii, iv, v — and nothing else (after iii marks 1, i
  // would need 7 which is gone).
  EXPECT_EQ(u->num_events(), 5u);
  // Roots: the three marked places 1, 4, 7.
  EXPECT_EQ(u->roots().size(), 3u);
}

TEST(UnfoldingTest, PaperNetCausalityAndConflict) {
  PetriNet net = MakePaperNet();
  auto u = Unfolding::Build(net, UnfoldOptions{});
  ASSERT_TRUE(u.ok());
  EventId ei = EventByName(*u, "i");
  EventId eii = EventByName(*u, "ii");
  EventId eiii = EventByName(*u, "iii");
  EventId eiv = EventByName(*u, "iv");
  EventId ev = EventByName(*u, "v");

  // i < iii (iii consumes place 2 produced by i).
  EXPECT_TRUE(u->CausallyPrecedes(ei, eiii));
  EXPECT_FALSE(u->CausallyPrecedes(eiii, ei));
  // ii < iv.
  EXPECT_TRUE(u->CausallyPrecedes(eii, eiv));
  // i # v (they compete for the root condition of place 7).
  EXPECT_TRUE(u->InConflict(ei, ev));
  EXPECT_TRUE(u->InConflict(ev, ei));
  // Conflict is inherited: iii # v.
  EXPECT_TRUE(u->InConflict(eiii, ev));
  // i and ii are concurrent (no causality, no conflict).
  EXPECT_FALSE(u->InConflict(ei, eii));
  EXPECT_FALSE(u->CausallyPrecedes(ei, eii));
  EXPECT_FALSE(u->CausallyPrecedes(eii, ei));
  // An event is never in conflict with itself.
  EXPECT_FALSE(u->InConflict(ei, ei));
}

TEST(UnfoldingTest, HomomorphismPreservesStructure) {
  // Definition 3: the unfolding maps places/transitions type- and
  // label-preservingly, and presets/postsets biject.
  PetriNet net = MakePaperNet(true);
  UnfoldOptions opts;
  opts.max_events = 50;
  auto u = Unfolding::Build(net, opts);
  ASSERT_TRUE(u.ok());
  for (EventId e = 0; e < u->num_events(); ++e) {
    const Event& ev = u->event(e);
    const Transition& tr = net.transition(ev.transition);
    ASSERT_EQ(ev.preset.size(), tr.pre.size());
    for (size_t i = 0; i < ev.preset.size(); ++i) {
      EXPECT_EQ(u->condition(ev.preset[i]).place, tr.pre[i]);
    }
    if (!ev.cutoff) {
      ASSERT_EQ(ev.postset.size(), tr.post.size());
      for (size_t i = 0; i < ev.postset.size(); ++i) {
        EXPECT_EQ(u->condition(ev.postset[i]).place, tr.post[i]);
      }
    }
  }
}

TEST(UnfoldingTest, EachConditionHasOneProducer) {
  PetriNet net = MakePaperNet(true);
  UnfoldOptions opts;
  opts.max_events = 80;
  auto u = Unfolding::Build(net, opts);
  ASSERT_TRUE(u.ok());
  // Definition 4: each place node has at most one incoming edge — by
  // construction every condition records exactly one producer (or none for
  // roots). Verify no event lists the same condition twice in a postset
  // and producers are consistent.
  for (EventId e = 0; e < u->num_events(); ++e) {
    std::set<CondId> post(u->event(e).postset.begin(),
                          u->event(e).postset.end());
    EXPECT_EQ(post.size(), u->event(e).postset.size());
    for (CondId c : u->event(e).postset) {
      EXPECT_EQ(u->condition(c).producer, e);
    }
  }
}

TEST(UnfoldingTest, NoDuplicateEvents) {
  // Definition 4: distinct events differ in preset or in ρ-image.
  PetriNet net = MakePaperNet(true);
  UnfoldOptions opts;
  opts.max_events = 80;
  auto u = Unfolding::Build(net, opts);
  ASSERT_TRUE(u.ok());
  std::set<std::pair<TransitionId, std::vector<CondId>>> seen;
  for (EventId e = 0; e < u->num_events(); ++e) {
    std::vector<CondId> preset = u->event(e).preset;
    std::sort(preset.begin(), preset.end());
    EXPECT_TRUE(seen.insert({u->event(e).transition, preset}).second);
  }
}

TEST(UnfoldingTest, CycleNetInfiniteUnfoldingRespectsDepthBudget) {
  PetriNet net = MakeCycleNet();
  UnfoldOptions opts;
  opts.max_depth = 6;
  auto u = Unfolding::Build(net, opts);
  ASSERT_TRUE(u.ok());
  EXPECT_TRUE(u->complete());  // depth-bounded prefix reaches its fixpoint
  // The cycle a,b,c repeats: depth 6 = exactly 6 events in a chain.
  EXPECT_EQ(u->num_events(), 6u);
  for (EventId e = 0; e < u->num_events(); ++e) {
    EXPECT_LE(u->event(e).depth, 6u);
  }
}

TEST(UnfoldingTest, EventBudgetMarksIncomplete) {
  PetriNet net = MakeCycleNet();
  UnfoldOptions opts;
  opts.max_events = 4;
  auto u = Unfolding::Build(net, opts);
  ASSERT_TRUE(u.ok());
  EXPECT_FALSE(u->complete());
  EXPECT_EQ(u->num_events(), 4u);
}

TEST(UnfoldingTest, CutoffsGiveFiniteCompletePrefix) {
  PetriNet net = MakeCycleNet();
  UnfoldOptions opts;
  opts.max_events = 0;  // unlimited; cut-offs must terminate on their own
  opts.use_cutoffs = true;
  auto u = Unfolding::Build(net, opts);
  ASSERT_TRUE(u.ok());
  EXPECT_TRUE(u->complete());
  // 3 reachable markings: the prefix stops after revisiting the initial
  // one. Events: a, b, c (c is the cutoff).
  EXPECT_LE(u->num_events(), 4u);
  bool has_cutoff = false;
  for (EventId e = 0; e < u->num_events(); ++e) {
    has_cutoff |= u->event(e).cutoff;
  }
  EXPECT_TRUE(has_cutoff);
}

TEST(UnfoldingTest, HandshakeConcurrency) {
  PetriNet net = MakeHandshakeNet();
  UnfoldOptions opts;
  opts.max_depth = 2;  // exactly one instance of each transition
  auto u = Unfolding::Build(net, opts);
  ASSERT_TRUE(u.ok());
  EventId el = EventByName(*u, "lwork");
  EventId er = EventByName(*u, "rwork");
  EXPECT_FALSE(u->InConflict(el, er));
  EXPECT_FALSE(u->CausallyPrecedes(el, er));
  EXPECT_FALSE(u->CausallyPrecedes(er, el));
  // sync depends on both.
  EventId es = EventByName(*u, "sync");
  EXPECT_TRUE(u->CausallyPrecedes(el, es));
  EXPECT_TRUE(u->CausallyPrecedes(er, es));
}

TEST(UnfoldingTest, RandomNetsUnfoldWithoutViolations) {
  // Property sweep: random safe nets unfold; homomorphism and co-relation
  // invariants hold on every prefix.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    RandomNetOptions ropts;
    ropts.num_peers = 3;
    ropts.places_per_peer = 3;
    ropts.transitions_per_peer = 4;
    ropts.sync_probability = 0.4;
    PetriNet net = MakeRandomNet(ropts, rng);
    ASSERT_TRUE(net.CheckSafety(20000).ok()) << "seed " << seed;
    UnfoldOptions opts;
    opts.max_events = 200;
    auto u = Unfolding::Build(net, opts);
    ASSERT_TRUE(u.ok()) << "seed " << seed;
    // Concurrent conditions are never related by causality through their
    // producers.
    for (CondId a = 0; a < u->num_conditions() && a < 60; ++a) {
      for (CondId b = a + 1; b < u->num_conditions() && b < 60; ++b) {
        if (!u->Concurrent(a, b)) continue;
        EventId pa = u->condition(a).producer;
        EventId pb = u->condition(b).producer;
        if (pa != kInvalidId && pb != kInvalidId && pa != pb) {
          EXPECT_FALSE(u->CausallyPrecedes(pa, pb) &&
                       u->Ancestors(pb).Test(pa) &&
                       u->InConflict(pa, pb))
              << "seed " << seed;
        }
      }
    }
  }
}

}  // namespace
}  // namespace dqsq::petri
