#include "petri/configuration.h"

#include <gtest/gtest.h>

#include "petri/examples.h"

namespace dqsq::petri {
namespace {

class PaperConfigTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = MakePaperNet();
    auto u = Unfolding::Build(net_, UnfoldOptions{});
    ASSERT_TRUE(u.ok());
    u_ = std::make_unique<Unfolding>(*std::move(u));
    for (EventId e = 0; e < u_->num_events(); ++e) {
      by_name_[net_.transition(u_->event(e).transition).name] = e;
    }
  }

  Configuration Config(const std::vector<std::string>& names) {
    std::vector<EventId> events;
    for (const std::string& n : names) events.push_back(by_name_.at(n));
    return Canonical(std::move(events));
  }

  PetriNet net_;
  std::unique_ptr<Unfolding> u_;
  std::map<std::string, EventId> by_name_;
};

TEST_F(PaperConfigTest, ValidConfigurations) {
  EXPECT_TRUE(IsConfiguration(*u_, Config({})));
  EXPECT_TRUE(IsConfiguration(*u_, Config({"i"})));
  EXPECT_TRUE(IsConfiguration(*u_, Config({"i", "ii", "iii"})));
  EXPECT_TRUE(IsConfiguration(*u_, Config({"ii", "iv"})));
  EXPECT_TRUE(IsConfiguration(*u_, Config({"v", "ii"})));
}

TEST_F(PaperConfigTest, DownwardClosureViolation) {
  // iii without its cause i.
  EXPECT_FALSE(IsConfiguration(*u_, Config({"iii"})));
  // iv without ii.
  EXPECT_FALSE(IsConfiguration(*u_, Config({"iv"})));
}

TEST_F(PaperConfigTest, ConflictViolation) {
  // i and v consume the same root condition (place 7).
  EXPECT_FALSE(IsConfiguration(*u_, Config({"i", "v"})));
  EXPECT_FALSE(IsConfiguration(*u_, Config({"i", "iii", "v"})));
}

TEST_F(PaperConfigTest, CutAndMarking) {
  Configuration c = Config({"i", "ii", "iii"});
  Marking m = MarkingOf(*u_, c);
  // After i, ii, iii: places 1 (reproduced by iii), 3 (from i), 5 (from
  // ii) are marked; 4, 7 consumed.
  auto marked = [&](const std::string& name) {
    for (PlaceId p = 0; p < net_.num_places(); ++p) {
      if (net_.place(p).name == name) return static_cast<bool>(m[p]);
    }
    return false;
  };
  EXPECT_TRUE(marked("1"));
  EXPECT_TRUE(marked("3"));
  EXPECT_TRUE(marked("5"));
  EXPECT_FALSE(marked("2"));
  EXPECT_FALSE(marked("4"));
  EXPECT_FALSE(marked("7"));
  EXPECT_EQ(CutOf(*u_, c).size(), 3u);
}

TEST_F(PaperConfigTest, EmptyConfigurationCutIsRoots) {
  EXPECT_EQ(CutOf(*u_, {}), u_->roots());
  Marking m = MarkingOf(*u_, {});
  EXPECT_EQ(m, net_.initial_marking());
}

TEST_F(PaperConfigTest, LinearizationsRespectCausality) {
  Configuration c = Config({"i", "ii", "iii"});
  std::vector<std::vector<EventId>> lins;
  EXPECT_TRUE(Linearizations(*u_, c, 100, &lins));
  // i < iii always; ii is free: orders = 3 positions for ii = 3.
  EXPECT_EQ(lins.size(), 3u);
  for (const auto& lin : lins) {
    size_t pos_i = 0, pos_iii = 0;
    for (size_t k = 0; k < lin.size(); ++k) {
      if (lin[k] == by_name_.at("i")) pos_i = k;
      if (lin[k] == by_name_.at("iii")) pos_iii = k;
    }
    EXPECT_LT(pos_i, pos_iii);
  }
}

TEST_F(PaperConfigTest, LinearizationsHonorLimit) {
  Configuration c = Config({"i", "ii", "iii"});
  std::vector<std::vector<EventId>> lins;
  EXPECT_FALSE(Linearizations(*u_, c, 2, &lins));
  EXPECT_EQ(lins.size(), 2u);
}

TEST(ConfigurationTest, CanonicalSortsAndDedups) {
  EXPECT_EQ(Canonical({3, 1, 2, 1}), (Configuration{1, 2, 3}));
  EXPECT_EQ(Canonical({}), Configuration{});
}

}  // namespace
}  // namespace dqsq::petri
