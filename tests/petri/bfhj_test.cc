#include "petri/bfhj.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "petri/examples.h"
#include "petri/random_net.h"
#include "petri/reference_diagnoser.h"

namespace dqsq::petri {
namespace {

TEST(ProductTest, ChainStructure) {
  PetriNet net = MakePaperNet();
  AlarmSequence alarms =
      MakeAlarms({{"b", "p1"}, {"a", "p2"}, {"c", "p1"}});
  auto product = BuildAlarmProduct(net, alarms);
  ASSERT_TRUE(product.ok()) << product.status().ToString();
  // Places: 8 original + chains: p1 has 2 alarms (3 places), p2 has 1
  // alarm (2 places) = 13.
  EXPECT_EQ(product->product.num_places(), 13u);
  // Transitions: i->b#1 (1), iii->c#2 (1), ii->a#1 (1), iv (c@p2: no c in
  // A_p2 -> none), v (b@p2: none) = 3.
  EXPECT_EQ(product->product.num_transitions(), 3u);
  EXPECT_EQ(product->chain_end.size(), 2u);
}

TEST(ProductTest, UnknownPeerRejected) {
  PetriNet net = MakePaperNet();
  auto product = BuildAlarmProduct(net, MakeAlarms({{"b", "nope"}}));
  EXPECT_FALSE(product.ok());
}

TEST(ProductTest, HiddenTransitionsPassThrough) {
  PetriNet net;
  PeerIndex p = net.AddPeer("p");
  PlaceId s0 = net.AddPlace("s0", p);
  PlaceId s1 = net.AddPlace("s1", p);
  net.AddTransition("th", p, "h", {s0}, {s1}, /*observable=*/false);
  net.SetInitialMarking({s0});
  auto product = BuildAlarmProduct(net, {});
  ASSERT_TRUE(product.ok());
  EXPECT_EQ(product->product.num_transitions(), 1u);
  EXPECT_FALSE(product->product.transition(0).observable);
}

class BfhjPaperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = MakePaperNet();
    auto u = Unfolding::Build(net_, UnfoldOptions{});
    ASSERT_TRUE(u.ok());
    u_ = std::make_unique<Unfolding>(*std::move(u));
  }

  PetriNet net_;
  std::unique_ptr<Unfolding> u_;
};

TEST_F(BfhjPaperTest, MatchesReferenceOnPaperSequences) {
  const std::vector<AlarmSequence> sequences = {
      MakeAlarms({{"b", "p1"}, {"a", "p2"}, {"c", "p1"}}),
      MakeAlarms({{"b", "p1"}, {"c", "p1"}, {"a", "p2"}}),
      MakeAlarms({{"c", "p1"}, {"b", "p1"}, {"a", "p2"}}),
      MakeAlarms({{"b", "p2"}}),
      MakeAlarms({{"a", "p2"}, {"c", "p2"}}),
      {},
  };
  for (const AlarmSequence& alarms : sequences) {
    auto ref = ReferenceDiagnose(*u_, alarms, ReferenceOptions{});
    ASSERT_TRUE(ref.ok());
    auto bfhj = BfhjDiagnose(net_, alarms, BfhjOptions{}, u_.get());
    ASSERT_TRUE(bfhj.ok()) << bfhj.status().ToString();
    EXPECT_EQ(bfhj->explanations, ref->explanations)
        << "sequence " << AlarmSequenceToString(alarms);
  }
}

TEST_F(BfhjPaperTest, MaterializationIsBoundedByDemand) {
  // The product unfolding only contains alarm-compatible instances: for
  // the paper's 3-alarm sequence that is 3 events, far fewer than the full
  // unfolding (5 events) — the materialization reduction of [8].
  AlarmSequence alarms =
      MakeAlarms({{"b", "p1"}, {"a", "p2"}, {"c", "p1"}});
  auto bfhj = BfhjDiagnose(net_, alarms, BfhjOptions{}, nullptr);
  ASSERT_TRUE(bfhj.ok());
  EXPECT_TRUE(bfhj->complete);
  EXPECT_EQ(bfhj->events_materialized, 3u);
  EXPECT_LT(bfhj->events_materialized, u_->num_events());
}

TEST(BfhjRandomTest, MatchesReferenceOnRandomNets) {
  // Property: for random safe nets and observations generated from real
  // runs, BFHJ explanations equal the reference diagnoser's.
  size_t nonempty = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    RandomNetOptions ropts;
    ropts.num_peers = 2;
    ropts.places_per_peer = 3;
    ropts.transitions_per_peer = 3;
    ropts.sync_probability = 0.3;
    ropts.num_alarm_symbols = 2;
    PetriNet net = MakeRandomNet(ropts, rng);
    auto run = GenerateRun(net, 4, rng);
    ASSERT_TRUE(run.ok());
    if (run->observation.size() > 4) continue;  // keep search tractable

    UnfoldOptions uopts;
    uopts.max_depth = run->observation.size() + 1;
    uopts.max_events = 3000;
    auto u = Unfolding::Build(net, uopts);
    ASSERT_TRUE(u.ok()) << "seed " << seed;
    if (!u->complete()) continue;

    auto ref = ReferenceDiagnose(*u, run->observation, ReferenceOptions{});
    ASSERT_TRUE(ref.ok()) << "seed " << seed;
    // The observation came from a real run, so there is >= 1 explanation.
    ASSERT_FALSE(ref->explanations.empty()) << "seed " << seed;
    nonempty++;

    auto bfhj = BfhjDiagnose(net, run->observation, BfhjOptions{}, &*u);
    ASSERT_TRUE(bfhj.ok()) << "seed " << seed;
    EXPECT_EQ(bfhj->explanations, ref->explanations) << "seed " << seed;
  }
  EXPECT_GE(nonempty, 5u);  // the sweep exercised real cases
}

}  // namespace
}  // namespace dqsq::petri
