#include "petri/dot.h"

#include <gtest/gtest.h>

#include "petri/examples.h"

namespace dqsq::petri {
namespace {

TEST(DotTest, NetRendering) {
  PetriNet net = MakePaperNet();
  std::string dot = NetToDot(net);
  EXPECT_NE(dot.find("digraph net"), std::string::npos);
  // Peer clusters.
  EXPECT_NE(dot.find("label=\"p1\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"p2\""), std::string::npos);
  // Transition i with its alarm.
  EXPECT_NE(dot.find("i [b]"), std::string::npos);
  // Marked places rendered bold.
  EXPECT_NE(dot.find("style=bold"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(DotTest, UnfoldingHighlightsConfiguration) {
  PetriNet net = MakePaperNet();
  auto u = Unfolding::Build(net, UnfoldOptions{});
  ASSERT_TRUE(u.ok());
  // Highlight the paper's shaded configuration {i, ii, iii}.
  Configuration shaded;
  for (EventId e = 0; e < u->num_events(); ++e) {
    const std::string& name = net.transition(u->event(e).transition).name;
    if (name == "i" || name == "ii" || name == "iii") shaded.push_back(e);
  }
  shaded = Canonical(std::move(shaded));
  std::string plain = UnfoldingToDot(*u, nullptr);
  std::string hl = UnfoldingToDot(*u, &shaded);
  EXPECT_EQ(plain.find("fillcolor=gray70"), std::string::npos);
  EXPECT_NE(hl.find("fillcolor=gray70"), std::string::npos);
  // All five events rendered in both.
  for (const char* name : {"i [b]", "ii [a]", "iii [c]", "iv [c]", "v [b]"}) {
    EXPECT_NE(plain.find(name), std::string::npos) << name;
  }
}

TEST(DotTest, ExplanationDagHasCausalEdges) {
  PetriNet net = MakePaperNet();
  auto u = Unfolding::Build(net, UnfoldOptions{});
  ASSERT_TRUE(u.ok());
  Configuration config;
  for (EventId e = 0; e < u->num_events(); ++e) {
    const std::string& name = net.transition(u->event(e).transition).name;
    if (name == "i" || name == "iii") config.push_back(e);
  }
  config = Canonical(std::move(config));
  std::string dot = ExplanationToDot(*u, config);
  // One causal edge i -> iii labeled with the connecting place "2".
  EXPECT_NE(dot.find("label=\"2\""), std::string::npos);
  EXPECT_NE(dot.find("-> e"), std::string::npos);
}

TEST(DotTest, EscapesQuotes) {
  PetriNet net;
  PeerIndex p = net.AddPeer("pe\"er");
  PlaceId a = net.AddPlace("pl\"ace", p);
  PlaceId b = net.AddPlace("b", p);
  net.AddTransition("t", p, "al\"arm", {a}, {b}, true);
  net.SetInitialMarking({a});
  std::string dot = NetToDot(net);
  EXPECT_NE(dot.find("pl\\\"ace"), std::string::npos);
  EXPECT_NE(dot.find("al\\\"arm"), std::string::npos);
}

}  // namespace
}  // namespace dqsq::petri
