#include "petri/net.h"

#include <gtest/gtest.h>

#include "petri/builder.h"
#include "petri/examples.h"

namespace dqsq::petri {
namespace {

TEST(PetriNetTest, PaperNetStructureMatchesPaperFacts) {
  PetriNet net = MakePaperNet();
  EXPECT_EQ(net.num_peers(), 2u);
  EXPECT_EQ(net.num_places(), 8u);
  EXPECT_EQ(net.num_transitions(), 5u);

  // α(i) = b, φ(i) = p1, •i = {1,7}, i• = {2,3}.
  const Transition& i = net.transition(0);
  EXPECT_EQ(i.name, "i");
  EXPECT_EQ(i.alarm, "b");
  EXPECT_EQ(net.peer_name(i.peer), "p1");
  ASSERT_EQ(i.pre.size(), 2u);
  EXPECT_EQ(net.place(i.pre[0]).name, "1");
  EXPECT_EQ(net.place(i.pre[1]).name, "7");
  ASSERT_EQ(i.post.size(), 2u);
  EXPECT_EQ(net.place(i.post[0]).name, "2");
  EXPECT_EQ(net.place(i.post[1]).name, "3");

  // Transitions i, ii and v are enabled initially.
  std::vector<std::string> enabled;
  for (TransitionId t : net.EnabledTransitions(net.initial_marking())) {
    enabled.push_back(net.transition(t).name);
  }
  EXPECT_EQ(enabled, (std::vector<std::string>{"i", "ii", "v"}));
}

TEST(PetriNetTest, PaperNeighborsMatchPaper) {
  PetriNet net = MakePaperNet();
  // Neighb(p1) = {p1, p2} (paper §4.1).
  PeerIndex p1 = net.FindPeer("p1");
  PeerIndex p2 = net.FindPeer("p2");
  EXPECT_EQ(net.Neighbors(p1), (std::vector<PeerIndex>{p1, p2}));
}

TEST(PetriNetTest, FiringMovesTokens) {
  PetriNet net = MakePaperNet();
  Marking m = net.initial_marking();
  // Fire i: marking of 1, 7 removed; 2, 3 marked (paper §2).
  auto next = net.Fire(m, 0);
  ASSERT_TRUE(next.ok());
  auto marked = [&](const Marking& mm, const std::string& name) {
    for (PlaceId p = 0; p < net.num_places(); ++p) {
      if (net.place(p).name == name) return static_cast<bool>(mm[p]);
    }
    ADD_FAILURE() << "no place " << name;
    return false;
  };
  EXPECT_FALSE(marked(*next, "1"));
  EXPECT_FALSE(marked(*next, "7"));
  EXPECT_TRUE(marked(*next, "2"));
  EXPECT_TRUE(marked(*next, "3"));
  EXPECT_TRUE(marked(*next, "4"));  // untouched
}

TEST(PetriNetTest, FiringDisabledTransitionFails) {
  PetriNet net = MakePaperNet();
  Marking m = net.initial_marking();
  // iii needs place 2, unmarked initially.
  auto result = net.Fire(m, 2);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PetriNetTest, ConflictOverSharedPlace) {
  PetriNet net = MakePaperNet();
  Marking m = net.initial_marking();
  // i and v compete for place 7: firing one disables the other.
  auto after_i = net.Fire(m, 0);
  ASSERT_TRUE(after_i.ok());
  EXPECT_FALSE(net.IsEnabled(*after_i, 4));  // v
  auto after_v = net.Fire(m, 4);
  ASSERT_TRUE(after_v.ok());
  EXPECT_FALSE(net.IsEnabled(*after_v, 0));  // i
}

TEST(PetriNetTest, SafetyCheckAcceptsPaperNet) {
  EXPECT_TRUE(MakePaperNet().CheckSafety().ok());
  EXPECT_TRUE(MakePaperNet(/*with_loop=*/true).CheckSafety().ok());
  EXPECT_TRUE(MakeCycleNet().CheckSafety().ok());
  EXPECT_TRUE(MakeHandshakeNet().CheckSafety().ok());
}

TEST(PetriNetTest, SafetyCheckRejectsUnsafeNet) {
  PetriNetBuilder b;
  b.AddPeer("p");
  b.AddPlace("x", "p", true).AddPlace("y", "p", true).AddPlace("z", "p");
  // Firing t1 marks z; firing t2 then marks z again: unsafe.
  b.AddTransition("t1", "p", "a", {"x"}, {"z"});
  b.AddTransition("t2", "p", "a", {"y"}, {"z"});
  auto net = b.Build();
  ASSERT_TRUE(net.ok());
  Status s = net->CheckSafety();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(PetriNetBuilderTest, ReportsUnknownNames) {
  PetriNetBuilder b;
  b.AddPeer("p").AddPlace("x", "p", true);
  b.AddTransition("t", "p", "a", {"nope"}, {"x"});
  EXPECT_FALSE(b.Build().ok());

  PetriNetBuilder b2;
  b2.AddPlace("x", "ghost", true);
  EXPECT_FALSE(b2.Build().ok());
}

TEST(PetriNetBuilderTest, RejectsDuplicates) {
  PetriNetBuilder b;
  b.AddPeer("p").AddPeer("p");
  EXPECT_FALSE(b.Build().ok());

  PetriNetBuilder b3;
  b3.AddPeer("p").AddPlace("x", "p", true).AddPlace("x", "p");
  EXPECT_FALSE(b3.Build().ok());
}

TEST(PetriNetTest, ValidateRejectsEmptyPresets) {
  PetriNet net;
  PeerIndex p = net.AddPeer("p");
  PlaceId x = net.AddPlace("x", p);
  net.AddTransition("t", p, "a", {}, {x}, true);
  net.SetInitialMarking({x});
  EXPECT_FALSE(net.Validate().ok());
}

TEST(PetriNetTest, ValidateRejectsEmptyMarking) {
  PetriNet net;
  PeerIndex p = net.AddPeer("p");
  net.AddPlace("x", p);
  EXPECT_FALSE(net.Validate().ok());
}

TEST(PetriNetTest, TransitionsOfPeerAndProducersConsumers) {
  PetriNet net = MakePaperNet();
  PeerIndex p1 = net.FindPeer("p1");
  auto p1_trans = net.TransitionsOfPeer(p1);
  ASSERT_EQ(p1_trans.size(), 2u);  // i, iii
  EXPECT_EQ(net.transition(p1_trans[0]).name, "i");
  EXPECT_EQ(net.transition(p1_trans[1]).name, "iii");

  // Place 1: produced by iii, consumed by i.
  PlaceId place1 = 0;
  ASSERT_EQ(net.Producers(place1).size(), 1u);
  EXPECT_EQ(net.transition(net.Producers(place1)[0]).name, "iii");
  ASSERT_EQ(net.Consumers(place1).size(), 1u);
  EXPECT_EQ(net.transition(net.Consumers(place1)[0]).name, "i");
}

TEST(PetriNetTest, FindPeerUnknownReturnsInvalid) {
  PetriNet net = MakePaperNet();
  EXPECT_EQ(net.FindPeer("p3"), kInvalidId);
}

}  // namespace
}  // namespace dqsq::petri
