#include "petri/reference_verifier.h"

#include <gtest/gtest.h>

#include "petri/net.h"
#include "petri/verifier.h"

namespace dqsq::petri {
namespace {

/// Same named regression fixture as verifier_test.cc: undiagnosable
/// because the faulty loop a1 and the fault-free loop a2 ring the same
/// alarm forever.
PetriNet MakeUndiagnosableLoopNet() {
  PetriNet net;
  PeerIndex p = net.AddPeer("peer0");
  PlaceId p0 = net.AddPlace("p0", p);
  PlaceId p1 = net.AddPlace("p1", p);
  PlaceId p2 = net.AddPlace("p2", p);
  net.AddTransition("f", p, "silent", {p0}, {p1}, /*observable=*/false,
                    /*fault=*/true);
  net.AddTransition("u", p, "silent", {p0}, {p2}, /*observable=*/false);
  net.AddTransition("a1", p, "a", {p1}, {p1}, /*observable=*/true);
  net.AddTransition("a2", p, "a", {p2}, {p2}, /*observable=*/true);
  net.SetInitialMarking({p0});
  return net;
}

TEST(ReferenceVerifierTest, FixtureIsUndiagnosableWithReplayableWitness) {
  PetriNet net = MakeUndiagnosableLoopNet();
  auto result = ReferenceDiagnosability(net);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->diagnosable);
  EXPECT_GT(result->states, 0u);
  EXPECT_GT(result->edges, 0u);
  ASSERT_TRUE(result->witness.has_value());
  Status replay = ReplayWitness(net, *result->witness);
  EXPECT_TRUE(replay.ok()) << replay.ToString();
}

TEST(ReferenceVerifierTest, DistinctAlarmsRestoreDiagnosability) {
  PetriNet net;
  PeerIndex p = net.AddPeer("peer0");
  PlaceId p0 = net.AddPlace("p0", p);
  PlaceId p1 = net.AddPlace("p1", p);
  PlaceId p2 = net.AddPlace("p2", p);
  net.AddTransition("f", p, "silent", {p0}, {p1}, /*observable=*/false,
                    /*fault=*/true);
  net.AddTransition("u", p, "silent", {p0}, {p2}, /*observable=*/false);
  net.AddTransition("b1", p, "b", {p1}, {p1}, /*observable=*/true);
  net.AddTransition("a2", p, "a", {p2}, {p2}, /*observable=*/true);
  net.SetInitialMarking({p0});
  auto result = ReferenceDiagnosability(net);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->diagnosable);
  EXPECT_FALSE(result->witness.has_value());
}

TEST(ReferenceVerifierTest, ZeroFaultNetIsTriviallyDiagnosable) {
  PetriNet net;
  PeerIndex p = net.AddPeer("peer0");
  PlaceId p0 = net.AddPlace("p0", p);
  PlaceId p1 = net.AddPlace("p1", p);
  net.AddTransition("go", p, "a", {p0}, {p1}, /*observable=*/true);
  net.AddTransition("back", p, "b", {p1}, {p0}, /*observable=*/true);
  net.SetInitialMarking({p0});
  auto result = ReferenceDiagnosability(net);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->diagnosable);
}

TEST(ReferenceVerifierTest, AllUnobservableFaultLoopIsUndiagnosable) {
  // Every transition silent: the faulty run can diverge forever without a
  // single observation, and the (empty) projections agree trivially.
  PetriNet net;
  PeerIndex p = net.AddPeer("peer0");
  PlaceId p0 = net.AddPlace("p0", p);
  PlaceId p1 = net.AddPlace("p1", p);
  net.AddTransition("f", p, "silent", {p0}, {p1}, /*observable=*/false,
                    /*fault=*/true);
  net.AddTransition("loop", p, "silent", {p1}, {p1}, /*observable=*/false);
  net.SetInitialMarking({p0});
  auto result = ReferenceDiagnosability(net);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->diagnosable);
  ASSERT_TRUE(result->witness.has_value());
  Status replay = ReplayWitness(net, *result->witness);
  EXPECT_TRUE(replay.ok()) << replay.ToString();
}

TEST(ReferenceVerifierTest, DeadlockingFaultDoesNotViolateDiagnosability) {
  // The fault leads to a dead place: no infinite ambiguous run exists, so
  // under the liveness convention the net counts as diagnosable.
  PetriNet net;
  PeerIndex p = net.AddPeer("peer0");
  PlaceId p0 = net.AddPlace("p0", p);
  PlaceId p1 = net.AddPlace("p1", p);
  PlaceId p2 = net.AddPlace("p2", p);
  net.AddTransition("f", p, "silent", {p0}, {p1}, /*observable=*/false,
                    /*fault=*/true);
  net.AddTransition("u", p, "silent", {p0}, {p2}, /*observable=*/false);
  net.AddTransition("a2", p, "a", {p2}, {p2}, /*observable=*/true);
  net.SetInitialMarking({p0});
  auto result = ReferenceDiagnosability(net);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->diagnosable);
}

TEST(ReferenceVerifierTest, StateBudgetIsEnforced) {
  PetriNet net = MakeUndiagnosableLoopNet();
  ReferenceVerifierOptions options;
  options.max_states = 2;
  auto result = ReferenceDiagnosability(net, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace dqsq::petri
