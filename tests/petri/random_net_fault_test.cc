#include <gtest/gtest.h>

#include "common/rng.h"
#include "petri/net.h"
#include "petri/random_net.h"

namespace dqsq::petri {
namespace {

RandomNetOptions BaseOptions() {
  RandomNetOptions options;
  options.num_peers = 3;
  options.places_per_peer = 4;
  options.transitions_per_peer = 5;
  options.hidden_probability = 0.3;
  return options;
}

TEST(RandomNetFaultTest, DefaultFaultFractionDrawsNothingFromTheStream) {
  // fault_fraction = 0.0 must short-circuit before touching the RNG, so
  // the generated net — and the RNG state afterwards — are exactly those
  // of revisions that predate the knob.
  RandomNetOptions plain = BaseOptions();
  RandomNetOptions zeroed = BaseOptions();
  zeroed.fault_fraction = 0.0;

  Rng rng_a(42);
  Rng rng_b(42);
  PetriNet a = MakeRandomNet(plain, rng_a);
  PetriNet b = MakeRandomNet(zeroed, rng_b);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_TRUE(a.FaultTransitions().empty());
  // The post-generation RNG states agree too: the next draw matches.
  EXPECT_EQ(rng_a.Next(), rng_b.Next());
}

TEST(RandomNetFaultTest, FaultTransitionsAreUnobservable) {
  RandomNetOptions options = BaseOptions();
  options.fault_fraction = 0.5;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    PetriNet net = MakeRandomNet(options, rng);
    for (TransitionId t : net.FaultTransitions()) {
      EXPECT_FALSE(net.transition(t).observable)
          << "seed " << seed << " transition " << net.transition(t).name;
      EXPECT_TRUE(net.transition(t).fault);
    }
  }
}

TEST(RandomNetFaultTest, FullFractionMarksEveryTransition) {
  RandomNetOptions options = BaseOptions();
  options.fault_fraction = 1.0;
  Rng rng(7);
  PetriNet net = MakeRandomNet(options, rng);
  EXPECT_EQ(net.FaultTransitions().size(), net.num_transitions());
  for (TransitionId t = 0; t < net.num_transitions(); ++t) {
    EXPECT_FALSE(net.transition(t).observable);
  }
}

TEST(RandomNetFaultTest, ModerateFractionYieldsSomeFaultsAcrossSeeds) {
  RandomNetOptions options = BaseOptions();
  options.fault_fraction = 0.25;
  size_t nets_with_faults = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    PetriNet net = MakeRandomNet(options, rng);
    if (!net.FaultTransitions().empty()) ++nets_with_faults;
  }
  EXPECT_GT(nets_with_faults, 10u);
}

TEST(RandomNetFaultTest, GenerationIsDeterministicPerSeed) {
  RandomNetOptions options = BaseOptions();
  options.fault_fraction = 0.25;
  Rng rng_a(9);
  Rng rng_b(9);
  PetriNet a = MakeRandomNet(options, rng_a);
  PetriNet b = MakeRandomNet(options, rng_b);
  EXPECT_EQ(a.ToString(), b.ToString());
}

}  // namespace
}  // namespace dqsq::petri
