#include "petri/analysis.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "petri/configuration.h"
#include "petri/examples.h"
#include "petri/random_net.h"

namespace dqsq::petri {
namespace {

TEST(AnalysisTest, CycleNetStateSpace) {
  PetriNet net = MakeCycleNet();
  auto graph = BuildReachabilityGraph(net, 1000);
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph->complete);
  EXPECT_EQ(graph->num_markings(), 3u);  // s0, s1, s2
  EXPECT_EQ(graph->num_edges(), 3u);     // the cycle
  NetAnalysis analysis = Analyze(net, *graph);
  EXPECT_TRUE(analysis.deadlocks.empty());
  EXPECT_TRUE(analysis.dead_transitions.empty());
  EXPECT_TRUE(analysis.reversible);
  EXPECT_EQ(analysis.fireable_transitions.size(), 3u);
}

TEST(AnalysisTest, PaperNetDeadlocksAndDeadTransitions) {
  PetriNet net = MakePaperNet();
  auto analysis = AnalyzeNet(net);
  ASSERT_TRUE(analysis.ok());
  // Place 7 is never reproduced: eventually every branch stops.
  EXPECT_FALSE(analysis->deadlocks.empty());
  // All five transitions can fire at least once.
  EXPECT_TRUE(analysis->dead_transitions.empty());
  EXPECT_FALSE(analysis->reversible);
}

TEST(AnalysisTest, DetectsDeadTransition) {
  PetriNet net;
  PeerIndex p = net.AddPeer("p");
  PlaceId a = net.AddPlace("a", p);
  PlaceId b = net.AddPlace("b", p);
  PlaceId c = net.AddPlace("c", p);  // never marked
  net.AddTransition("live", p, "x", {a}, {b}, true);
  net.AddTransition("dead", p, "y", {c}, {a}, true);
  net.SetInitialMarking({a});
  auto analysis = AnalyzeNet(net);
  ASSERT_TRUE(analysis.ok());
  ASSERT_EQ(analysis->dead_transitions.size(), 1u);
  EXPECT_EQ(net.transition(analysis->dead_transitions[0]).name, "dead");
}

TEST(AnalysisTest, BudgetTruncationReported) {
  // A net with a large state space: 12 independent toggles -> 2^12
  // markings.
  PetriNet net;
  PeerIndex p = net.AddPeer("p");
  std::vector<PlaceId> init;
  for (int i = 0; i < 12; ++i) {
    PlaceId off = net.AddPlace("off" + std::to_string(i), p);
    PlaceId on = net.AddPlace("on" + std::to_string(i), p);
    net.AddTransition("t" + std::to_string(i), p, "a", {off}, {on}, true);
    net.AddTransition("u" + std::to_string(i), p, "b", {on}, {off}, true);
    init.push_back(off);
  }
  net.SetInitialMarking(init);
  auto graph = BuildReachabilityGraph(net, 100);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(graph->complete);
  EXPECT_EQ(graph->num_markings(), 100u);

  auto full = BuildReachabilityGraph(net, 10000);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->complete);
  EXPECT_EQ(full->num_markings(), 4096u);
}

TEST(AnalysisTest, ReachabilityMatchesUnfoldingMarkings) {
  // Every marking reached by a configuration of the unfolding prefix is in
  // the reachability graph (interleaving vs partial-order semantics).
  for (uint64_t seed = 3; seed <= 6; ++seed) {
    Rng rng(seed);
    RandomNetOptions ropts;
    ropts.num_peers = 2;
    ropts.places_per_peer = 3;
    ropts.transitions_per_peer = 3;
    PetriNet net = MakeRandomNet(ropts, rng);
    auto graph = BuildReachabilityGraph(net, 10000);
    ASSERT_TRUE(graph.ok()) << "seed " << seed;
    std::set<Marking> reachable(graph->markings.begin(),
                                graph->markings.end());
    UnfoldOptions uopts;
    uopts.max_depth = 3;
    uopts.max_events = 500;
    auto u = Unfolding::Build(net, uopts);
    ASSERT_TRUE(u.ok());
    // Check local configurations of all events.
    for (EventId e = 0; e < u->num_events(); ++e) {
      Configuration c = u->LocalConfiguration(e);
      EXPECT_TRUE(reachable.contains(MarkingOf(*u, c)))
          << "seed " << seed << " event " << e;
    }
  }
}

}  // namespace
}  // namespace dqsq::petri
