#include "common/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dqsq {
namespace {

// Each test uses its own registry instance (or resets the global one) so
// tests stay independent of instrumentation firing elsewhere.

TEST(LabelsTest, OrderInsensitiveAndSorted) {
  Labels a{{"engine", "dqsq"}, {"peer", "p1"}};
  Labels b{{"peer", "p1"}, {"engine", "dqsq"}};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ToString(), "{engine=dqsq,peer=p1}");
  EXPECT_EQ(Labels{}.ToString(), "");
}

TEST(LabelsTest, SetOverwritesAndFindLooksUp) {
  Labels l;
  l.Set("k", "v1");
  l.Set("k", "v2");
  ASSERT_NE(l.Find("k"), nullptr);
  EXPECT_EQ(*l.Find("k"), "v2");
  EXPECT_EQ(l.Find("missing"), nullptr);
}

TEST(CounterTest, IncrementAccumulates) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("test.counter");
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  // Same (name, labels) yields the same counter.
  EXPECT_EQ(&registry.GetCounter("test.counter"), &c);
  // Different labels yield a distinct counter.
  Counter& labeled = registry.GetCounter("test.counter", {{"x", "1"}});
  EXPECT_NE(&labeled, &c);
  EXPECT_EQ(labeled.value(), 0u);
}

TEST(GaugeTest, SetAndAddBothWays) {
  MetricsRegistry registry;
  Gauge& g = registry.GetGauge("test.gauge");
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(~0ull), 64u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
}

TEST(HistogramTest, RecordCountsSumAndBuckets) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("test.hist");
  h.Record(0);
  h.Record(1);
  h.Record(5);
  h.Record(5);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 11u);
  EXPECT_EQ(h.bucket(0), 1u);  // the zero
  EXPECT_EQ(h.bucket(1), 1u);  // 1
  EXPECT_EQ(h.bucket(3), 2u);  // 4..7
}

TEST(ScopedTimerTest, RecordsOneSampleOnDestruction) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("test.timer");
  { ScopedTimer timer(h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(SnapshotTest, DiffSubtractsCountersAndKeepsGauges) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("runs");
  Gauge& g = registry.GetGauge("level");
  c.Increment(10);
  g.Set(3);
  MetricsSnapshot before = registry.Snapshot();
  c.Increment(7);
  g.Set(9);
  registry.GetCounter("fresh").Increment(2);  // absent from `before`
  MetricsSnapshot diff = registry.Snapshot().Diff(before);
  EXPECT_EQ(diff.Value("runs"), 7u);
  EXPECT_EQ(diff.Value("fresh"), 2u);
  const MetricSample* gauge = diff.Find("level");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->gauge_value, 9);
}

TEST(SnapshotTest, DiffSubtractsHistograms) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("lat");
  h.Record(4);
  MetricsSnapshot before = registry.Snapshot();
  h.Record(4);
  h.Record(100);
  MetricsSnapshot diff = registry.Snapshot().Diff(before);
  const MetricSample* s = diff.Find("lat");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 2u);
  EXPECT_EQ(s->sum, 104u);
}

TEST(SnapshotTest, TotalSumsAcrossLabelSets) {
  MetricsRegistry registry;
  registry.GetCounter("msgs", {{"peer", "a"}}).Increment(3);
  registry.GetCounter("msgs", {{"peer", "b"}}).Increment(4);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Total("msgs"), 7u);
  EXPECT_EQ(snap.Value("msgs", {{"peer", "a"}}), 3u);
  EXPECT_EQ(snap.Value("msgs"), 0u);  // no unlabeled variant
}

TEST(SnapshotTest, JsonRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("datalog.eval.facts_derived", {{"mode", "seminaive"}},
                      "facts")
      .Increment(123);
  registry.GetGauge("budget", {}, "facts").Set(-7);
  Histogram& h = registry.GetHistogram("solve.wall_ns", {{"strategy", "qsq"}});
  h.Record(0);
  h.Record(1000);
  h.Record(123456789);
  MetricsSnapshot snap = registry.Snapshot();

  std::string json = snap.ToJson();
  auto parsed = MetricsSnapshot::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->samples.size(), snap.samples.size());
  for (size_t i = 0; i < snap.samples.size(); ++i) {
    EXPECT_EQ(parsed->samples[i], snap.samples[i]) << "sample " << i;
  }
  // Round-tripping the parse reproduces the exact serialization.
  EXPECT_EQ(parsed->ToJson(), json);
}

TEST(SnapshotTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(MetricsSnapshot::FromJson("").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("{").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("[]").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("{\"metrics\": 3}").ok());
}

TEST(RegistryTest, TypeStableAcrossLookups) {
  MetricsRegistry registry;
  registry.GetCounter("n", {}, "facts");
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.samples.size(), 1u);
  EXPECT_EQ(snap.samples[0].type, MetricType::kCounter);
  EXPECT_EQ(snap.samples[0].unit, "facts");
}

TEST(RegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(RegistryTest, ResetForTestZeroesInPlace) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("c");
  Histogram& h = registry.GetHistogram("h");
  c.Increment(5);
  h.Record(9);
  registry.ResetForTest();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(9)), 0u);
}

TEST(RegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("threads.counter");
  Histogram& h = registry.GetHistogram("threads.hist");
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &c, &h, t] {
      // Mix registration (locked) with updates (lock-free).
      Counter& mine = registry.GetCounter(
          "threads.per_thread", {{"t", std::to_string(t)}});
      for (int i = 0; i < kIters; ++i) {
        c.Increment();
        mine.Increment();
        h.Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kIters);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Total("threads.per_thread"),
            static_cast<uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace dqsq
