#include "common/bitset.h"

#include <gtest/gtest.h>

namespace dqsq {
namespace {

TEST(DynBitsetTest, SetTestClear) {
  DynBitset b;
  EXPECT_FALSE(b.Test(0));
  EXPECT_FALSE(b.Test(1000));
  b.Set(5);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(5));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(6));
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.PopCount(), 2u);
}

TEST(DynBitsetTest, SetOps) {
  DynBitset a, b;
  a.Set(1);
  a.Set(70);
  a.Set(3);
  b.Set(70);
  b.Set(3);
  b.Set(200);

  DynBitset inter = a;
  inter.IntersectWith(b);
  EXPECT_EQ(inter.ToVector(), (std::vector<uint32_t>{3, 70}));

  DynBitset uni = a;
  uni.UnionWith(b);
  EXPECT_EQ(uni.ToVector(), (std::vector<uint32_t>{1, 3, 70, 200}));

  EXPECT_TRUE(uni.Contains(a));
  EXPECT_TRUE(uni.Contains(b));
  EXPECT_FALSE(a.Contains(b));
}

TEST(DynBitsetTest, DisjointAndEquality) {
  DynBitset a, b, c;
  a.Set(10);
  b.Set(11);
  c.Set(10);
  EXPECT_TRUE(a.DisjointFrom(b));
  EXPECT_FALSE(a.DisjointFrom(c));
  EXPECT_TRUE(a == c);
  EXPECT_FALSE(a == b);
  // Different word counts, same bits.
  DynBitset d(1000);
  d.Set(10);
  EXPECT_TRUE(a == d);
}

TEST(DynBitsetTest, ToVectorAscending) {
  DynBitset b;
  for (uint32_t i : {500u, 0u, 63u, 64u, 65u, 200u}) b.Set(i);
  EXPECT_EQ(b.ToVector(), (std::vector<uint32_t>{0, 63, 64, 65, 200, 500}));
}

TEST(DynBitsetTest, IntersectShrinksLongerSide) {
  DynBitset a, b;
  a.Set(300);
  b.Set(3);
  a.IntersectWith(b);
  EXPECT_EQ(a.PopCount(), 0u);
  EXPECT_FALSE(a.Test(300));
}

}  // namespace
}  // namespace dqsq
