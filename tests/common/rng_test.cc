#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace dqsq {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  // bound 1 always yields 0.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(42);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, NextBoolEdges) {
  Rng rng(42);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += rng.NextBool(0.25);
  EXPECT_NEAR(trues / 10000.0, 0.25, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace dqsq
