#include "common/status.h"

#include <gtest/gtest.h>

namespace dqsq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad rule");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad rule");
}

TEST(StatusTest, AllErrorConstructors) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Double(StatusOr<int> in) {
  DQSQ_ASSIGN_OR_RETURN(int x, std::move(in));
  return 2 * x;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Double(21), 42);
  EXPECT_EQ(Double(InternalError("boom")).status().code(),
            StatusCode::kInternal);
}

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return Status::Ok();
}

Status Chain(int x) {
  DQSQ_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_FALSE(Chain(-1).ok());
}

}  // namespace
}  // namespace dqsq
