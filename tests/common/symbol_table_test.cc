#include "common/symbol_table.h"

#include <gtest/gtest.h>

namespace dqsq {
namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable table;
  SymbolId a = table.Intern("alpha");
  SymbolId b = table.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("alpha"), a);
  EXPECT_EQ(table.Name(a), "alpha");
  EXPECT_EQ(table.Name(b), "beta");
}

TEST(SymbolTableTest, LookupFindsOnlyInterned) {
  SymbolTable table;
  SymbolId a = table.Intern("x");
  SymbolId found;
  EXPECT_TRUE(table.Lookup("x", &found));
  EXPECT_EQ(found, a);
  EXPECT_FALSE(table.Lookup("y", &found));
}

TEST(SymbolTableTest, StableAcrossManyInsertions) {
  SymbolTable table;
  std::vector<SymbolId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(table.Intern("sym" + std::to_string(i)));
  }
  // References and lookups survive growth.
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(table.Name(ids[i]), "sym" + std::to_string(i));
    SymbolId found;
    ASSERT_TRUE(table.Lookup("sym" + std::to_string(i), &found));
    EXPECT_EQ(found, ids[i]);
  }
  EXPECT_EQ(table.size(), 10000u);
}

TEST(SymbolTableTest, EmptyStringIsValidSymbol) {
  SymbolTable table;
  SymbolId e = table.Intern("");
  EXPECT_EQ(table.Name(e), "");
  EXPECT_EQ(table.Intern(""), e);
}

}  // namespace
}  // namespace dqsq
